// Differential tests: the flat I/O schedulers (sched_simple.cpp,
// sched_cfq.cpp, sched_anticipatory.cpp) against the frozen multimap
// originals (sched_reference.cpp), under randomized arrival / dispatch /
// expiry sequences — the same treatment test_rangeset_model.cpp gives
// RangeSet. Every Decision must match field for field.
//
// Ids are unique throughout the differential runs: the reference deadline
// scheduler indexes FIFO staleness by request id, the flat one by slab-slot
// generation, and the two notions only coincide when ids are not reused
// (DeadlineFifoDesync below covers the divergent duplicate-id corner).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "disk/scheduler.hpp"
#include "disk/sorted_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dpar::disk {
namespace {

struct ReqSpec {
  std::uint64_t id = 0;
  std::uint64_t lba = 0;
  std::uint32_t sectors = 8;
  bool is_write = false;
  std::uint64_t context = 0;
};

Request materialize(const ReqSpec& s) {
  Request r;
  r.id = s.id;
  r.lba = s.lba;
  r.sectors = s.sectors;
  r.is_write = s.is_write;
  r.context = s.context;
  return r;
}

void expect_same(const Decision& flat, const Decision& ref, const std::string& where) {
  ASSERT_EQ(static_cast<int>(flat.kind), static_cast<int>(ref.kind)) << where;
  if (flat.kind == Decision::Kind::kDispatch) {
    EXPECT_EQ(flat.request.id, ref.request.id) << where;
    EXPECT_EQ(flat.request.lba, ref.request.lba) << where;
    EXPECT_EQ(flat.request.sectors, ref.request.sectors) << where;
    EXPECT_EQ(flat.request.is_write, ref.request.is_write) << where;
    EXPECT_EQ(flat.request.context, ref.request.context) << where;
  } else if (flat.kind == Decision::Kind::kWaitUntil) {
    EXPECT_EQ(flat.wait_until, ref.wait_until) << where;
  }
}

using SchedFactory = std::unique_ptr<IoScheduler> (*)();

struct Policy {
  const char* name;
  SchedFactory flat;
  SchedFactory ref;
};

const Policy kPolicies[] = {
    {"noop", +[] { return make_noop_scheduler(); },
     +[] { return make_reference_noop_scheduler(); }},
    {"deadline", +[] { return make_deadline_scheduler(); },
     +[] { return make_reference_deadline_scheduler(); }},
    {"cscan", +[] { return make_cscan_scheduler(); },
     +[] { return make_reference_cscan_scheduler(); }},
    {"cfq", +[] { return make_cfq_scheduler(); },
     +[] { return make_reference_cfq_scheduler(); }},
    {"anticipatory", +[] { return make_anticipatory_scheduler(); },
     +[] { return make_reference_anticipatory_scheduler(); }},
};

/// Drive flat and reference through one randomized schedule and compare every
/// decision. The lba domain is kept small enough that equal-sector ties occur
/// (the multimap's insertion-order iteration is part of the contract), and
/// time jumps straddle the deadline scheduler's 500 ms / 5 s expiries and
/// CFQ's 100 ms slice.
void run_differential(const Policy& policy, std::uint64_t seed, int ops) {
  auto flat = policy.flat();
  auto ref = policy.ref();
  sim::Rng rng(seed);
  sim::Time now = 0;
  std::uint64_t head = 0;
  std::uint64_t next_id = 1;

  auto serve_one = [&](const std::string& where) {
    for (int spins = 0; spins < 64; ++spins) {
      Decision df = flat->next(head, now);
      Decision dr = ref->next(head, now);
      expect_same(df, dr, where);
      if (::testing::Test::HasFatalFailure()) return;
      if (df.kind == Decision::Kind::kDispatch) {
        head = df.request.end_lba();
        now += sim::usec(50 + rng.uniform(200));
        flat->completed(df.request, now);
        ref->completed(dr.request, now);
        return;
      }
      if (df.kind == Decision::Kind::kWaitUntil) {
        now = std::max(now + 1, df.wait_until);
        continue;
      }
      return;  // both idle
    }
    FAIL() << where << ": scheduler spun without dispatching";
  };

  for (int op = 0; op < ops; ++op) {
    const std::string where = std::string(policy.name) + " seed=" +
                              std::to_string(seed) + " op=" + std::to_string(op);
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 40) {
      ReqSpec s;
      s.id = next_id++;
      s.lba = rng.uniform(1 << 9) * 8;  // small domain: equal-sector ties
      s.sectors = 8;
      s.is_write = rng.uniform(4) == 0;
      s.context = rng.uniform(6);
      flat->enqueue(materialize(s), now);
      ref->enqueue(materialize(s), now);
    } else if (roll < 50) {
      // Decomposed batch: usually an ascending run (the server fast path),
      // sometimes shuffled.
      const std::size_t n = 1 + rng.uniform(24);
      const bool ascending = !rng.chance(0.25);
      std::uint64_t lba = rng.uniform(1 << 12) * 8;
      std::vector<Request> a, b;
      for (std::size_t i = 0; i < n; ++i) {
        ReqSpec s;
        s.id = next_id++;
        s.lba = ascending ? (lba += 8 * (1 + rng.uniform(4))) : rng.uniform(1 << 9) * 8;
        s.sectors = 8;
        s.is_write = rng.uniform(4) == 0;
        s.context = rng.uniform(6);
        a.push_back(materialize(s));
        b.push_back(materialize(s));
      }
      flat->enqueue_batch(a.data(), n, now);
      ref->enqueue_batch(b.data(), n, now);
    } else if (roll < 85) {
      ASSERT_EQ(flat->pending(), ref->pending()) << where;
      if (flat->pending() > 0) {
        serve_one(where);
        if (::testing::Test::HasFatalFailure()) return;
      }
    } else if (roll < 95) {
      now += sim::usec(rng.uniform(5000));
    } else {
      // Large jump: expire read deadlines (500 ms), occasionally writes (5 s).
      now += rng.chance(0.2) ? sim::secs(6) : sim::msec(600);
    }
  }

  // Full drain. Batch enqueues can leave a backlog well beyond `ops`, so the
  // runaway guard is sized from the actual backlog, not the op count.
  std::size_t guard = 0;
  const std::size_t drain_budget = flat->pending() + 1000;
  while (flat->pending() > 0 && guard++ < drain_budget) {
    ASSERT_EQ(flat->pending(), ref->pending()) << policy.name << " drain";
    serve_one(std::string(policy.name) + " drain");
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(flat->pending(), 0u) << policy.name;
  EXPECT_EQ(ref->pending(), 0u) << policy.name;
}

class SchedDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedDifferential, FlatMatchesReferenceDecisionForDecision) {
  for (const Policy& p : kPolicies) {
    run_differential(p, GetParam(), 4000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedDifferential,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

/// enqueue_batch must be observationally identical to a loop of enqueue — on
/// the overriding flat schedulers as well as the defaulted ones.
TEST(SchedBatch, BatchEnqueueEqualsLoopEnqueue) {
  for (const Policy& p : kPolicies) {
    auto batched = p.flat();
    auto looped = p.flat();
    sim::Rng rng(7);
    sim::Time now = 0;
    std::uint64_t head_b = 0, head_l = 0, next_id = 1;
    for (int round = 0; round < 40; ++round) {
      const std::size_t n = 1 + rng.uniform(32);
      std::vector<Request> a, b;
      for (std::size_t i = 0; i < n; ++i) {
        ReqSpec s;
        s.id = next_id++;
        s.lba = rng.uniform(1 << 10) * 8;
        s.is_write = rng.uniform(4) == 0;
        s.context = rng.uniform(4);
        a.push_back(materialize(s));
        b.push_back(materialize(s));
      }
      batched->enqueue_batch(a.data(), n, now);
      for (std::size_t i = 0; i < n; ++i) looped->enqueue(std::move(b[i]), now);
      ASSERT_EQ(batched->pending(), looped->pending());
      const std::size_t serve = rng.uniform(n + 1);
      for (std::size_t i = 0; i < serve; ++i) {
        for (int spins = 0; spins < 64; ++spins) {
          Decision db = batched->next(head_b, now);
          Decision dl = looped->next(head_l, now);
          expect_same(db, dl, std::string(p.name) + " batch-vs-loop");
          if (::testing::Test::HasFatalFailure()) return;
          if (db.kind == Decision::Kind::kWaitUntil) {
            now = std::max(now + 1, db.wait_until);
            continue;
          }
          if (db.kind == Decision::Kind::kDispatch) {
            head_b = db.request.end_lba();
            head_l = dl.request.end_lba();
            now += sim::usec(80);
            batched->completed(db.request, now);
            looped->completed(dl.request, now);
          }
          break;
        }
      }
      now += sim::msec(1 + rng.uniform(200));
    }
  }
}

/// The deadline scheduler's FIFO-desync guard (originally a reachable-looking
/// throw in sched_simple.cpp): a request dispatched by the elevator sweep
/// leaves its expiry-FIFO entry behind. Lazy validation must drop that stale
/// entry — in the reference via the id index, in the flat scheduler via the
/// slab-slot generation — and never reach the logic_error.
TEST(DeadlineFifoDesync, StaleFifoEntriesAreDroppedNotFatal) {
  for (auto make : {+[] { return make_deadline_scheduler(sim::msec(100), sim::secs(5)); },
                    +[] { return make_reference_deadline_scheduler(sim::msec(100), sim::secs(5)); }}) {
    auto s = make();
    // Read A sits near the head and is swept up before its deadline; its FIFO
    // entry goes stale. Read B far away expires and must jump the queue.
    ReqSpec a{1, 1000, 8, false, 0}, b{2, 900000, 8, false, 0}, c{3, 2000, 8, false, 0};
    s->enqueue(materialize(a), 0);
    s->enqueue(materialize(b), 0);
    Decision d = s->next(0, sim::msec(1));
    ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
    EXPECT_EQ(d.request.id, 1u);
    s->enqueue(materialize(c), sim::msec(2));
    // Both A's stale entry and B's expired entry sit at the FIFO head now.
    ASSERT_NO_THROW(d = s->next(d.request.end_lba(), sim::msec(150)));
    ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
    EXPECT_EQ(d.request.id, 2u);  // expired B preempts the sweep (C is nearer)
    ASSERT_NO_THROW(d = s->next(d.request.end_lba(), sim::msec(150)));
    EXPECT_EQ(d.request.id, 3u);
    EXPECT_EQ(s->pending(), 0u);
  }
}

/// Randomized churn across expiries: the desync guard must stay unreachable
/// (no logic_error) while every request is served exactly once.
TEST(DeadlineFifoDesync, GuardIsUnreachableUnderChurn) {
  for (auto make : {+[] { return make_deadline_scheduler(); },
                    +[] { return make_reference_deadline_scheduler(); }}) {
    auto s = make();
    sim::Rng rng(99);
    sim::Time now = 0;
    std::uint64_t head = 0, next_id = 1, served = 0, enqueued = 0;
    ASSERT_NO_THROW({
      for (int op = 0; op < 20000; ++op) {
        const std::uint64_t roll = rng.uniform(10);
        if (roll < 4) {
          ReqSpec spec;
          spec.id = next_id++;
          spec.lba = rng.uniform(1 << 9) * 8;
          spec.is_write = rng.uniform(3) == 0;
          s->enqueue(materialize(spec), now);
          ++enqueued;
        } else if (roll < 8 && s->pending() > 0) {
          Decision d = s->next(head, now);
          ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
          head = d.request.end_lba();
          ++served;
        } else if (roll < 9) {
          now += sim::msec(600);  // read expiry
        } else {
          now += sim::secs(6);  // write expiry
        }
      }
      while (s->pending() > 0) {
        Decision d = s->next(head, now);
        ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
        head = d.request.end_lba();
        ++served;
      }
    });
    EXPECT_EQ(served, enqueued);
  }
}

/// Duplicate ids are the one corner where flat and reference diverge by
/// design: the reference's id-keyed staleness index conflates the two
/// requests (the survivor's FIFO entry looks stale and loses its deadline),
/// while slot generations keep them distinct. Both must still serve every
/// request exactly once, without throwing.
TEST(DeadlineFifoDesync, DuplicateIdsServeEveryRequestOnce) {
  for (auto make : {+[] { return make_deadline_scheduler(sim::msec(100), sim::secs(5)); },
                    +[] { return make_reference_deadline_scheduler(sim::msec(100), sim::secs(5)); }}) {
    auto s = make();
    ReqSpec a{7, 1000, 8, false, 0}, dup{7, 500000, 8, false, 0};
    s->enqueue(materialize(a), 0);
    s->enqueue(materialize(dup), 0);
    std::uint64_t head = 0;
    std::size_t served = 0;
    ASSERT_NO_THROW({
      sim::Time now = sim::msec(1);
      while (s->pending() > 0) {
        Decision d = s->next(head, now);
        ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
        head = d.request.end_lba();
        now += sim::msec(150);  // straddles the read deadline
        ++served;
      }
    });
    EXPECT_EQ(served, 2u);
  }
}

// ---- Unit tests of the flat containers themselves.

TEST(SortedRunQueue, ElevatorOrderWithInsertionOrderTieBreak) {
  SortedRunQueue q;
  q.insert(materialize({1, 100, 8, false, 0}));
  q.insert(materialize({2, 50, 8, false, 0}));
  q.insert(materialize({3, 100, 8, false, 0}));  // ties with id 1, arrived later
  q.insert(materialize({4, 200, 8, false, 0}));
  EXPECT_EQ(q.take(q.pick(60)).id, 1u);   // first 100, insertion order
  EXPECT_EQ(q.take(q.pick(60)).id, 3u);   // second 100
  EXPECT_EQ(q.take(q.pick(150)).id, 4u);  // 200
  EXPECT_EQ(q.take(q.pick(250)).id, 2u);  // wrap to 50
  EXPECT_TRUE(q.empty());
}

TEST(SortedRunQueue, LazyMergeKeepsOrderAcrossInterleavedAppends) {
  SortedRunQueue q;
  sim::Rng rng(5);
  std::vector<std::uint64_t> lbas;
  for (int burst = 0; burst < 50; ++burst) {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t lba = rng.uniform(1 << 16);
      lbas.push_back(lba);
      q.insert(materialize({static_cast<std::uint64_t>(lbas.size()), lba, 8, false, 0}));
    }
    // Serve a few from a moving head; each must be the elevator's choice.
    std::uint64_t head = rng.uniform(1 << 16);
    for (int i = 0; i < 10 && !q.empty(); ++i) {
      const Request r = q.take(q.pick(head));
      // The picked lba must be the smallest >= head, or the global minimum,
      // validated against the full pending multiset.
      std::uint64_t best_above = UINT64_MAX, best_min = UINT64_MAX;
      for (std::size_t k = 0; k < lbas.size(); ++k) {
        if (lbas[k] == UINT64_MAX) continue;
        best_min = std::min(best_min, lbas[k]);
        if (lbas[k] >= head) best_above = std::min(best_above, lbas[k]);
      }
      const std::uint64_t expect = best_above != UINT64_MAX ? best_above : best_min;
      ASSERT_EQ(r.lba, expect);
      lbas[r.id - 1] = UINT64_MAX;  // mark served
      head = r.end_lba();
    }
  }
}

TEST(SortedRunQueue, TombstoneCompactionKeepsIndexOfSlotCorrect) {
  SortedRunQueue q;
  std::vector<std::uint32_t> slots;
  for (std::uint64_t i = 0; i < 64; ++i)
    slots.push_back(q.insert(materialize({i + 1, i * 16, 8, false, 0})));
  // Take every other request via index_of_slot, forcing compaction cycles.
  for (std::size_t i = 0; i < 64; i += 2) {
    const std::size_t idx = q.index_of_slot(slots[i]);
    ASSERT_NE(idx, SortedRunQueue::npos);
    EXPECT_EQ(q.take(idx).id, i + 1);
  }
  EXPECT_EQ(q.size(), 32u);
  for (std::size_t i = 1; i < 64; i += 2) {
    const std::size_t idx = q.index_of_slot(slots[i]);
    ASSERT_NE(idx, SortedRunQueue::npos);
    EXPECT_EQ(q.peek(idx).id, i + 1);
  }
  // A dispatched slot is no longer found.
  EXPECT_EQ(q.index_of_slot(slots[0]), SortedRunQueue::npos);
}

TEST(SortedRunQueue, GenerationBumpsOnTakeAndSlotReuse) {
  SortedRunQueue q;
  const std::uint32_t s1 = q.insert(materialize({1, 100, 8, false, 0}));
  const std::uint32_t g1 = q.generation(s1);
  q.take(q.index_of_slot(s1));
  EXPECT_NE(q.generation(s1), g1);
  const std::uint32_t s2 = q.insert(materialize({2, 300, 8, false, 0}));
  EXPECT_EQ(s2, s1);  // LIFO slot reuse
  EXPECT_NE(q.generation(s2), g1);
}

TEST(SortedRunQueue, BatchInsertReportsSlotsInArrivalOrder) {
  SortedRunQueue q;
  std::vector<Request> batch;
  for (std::uint64_t i = 0; i < 10; ++i)
    batch.push_back(materialize({i + 1, (10 - i) * 64, 8, false, 0}));  // descending
  std::vector<std::uint32_t> slots(batch.size());
  q.insert_batch(batch.data(), batch.size(), slots.data());
  for (std::size_t i = 0; i < slots.size(); ++i)
    EXPECT_EQ(q.slot_request(slots[i]).id, i + 1);
  // Elevator still serves in ascending order.
  std::uint64_t head = 0, prev = 0;
  while (!q.empty()) {
    const Request r = q.take(q.pick(head));
    EXPECT_GE(r.lba, prev);
    prev = r.lba;
    head = r.end_lba();
  }
}

TEST(SlotFifo, FifoOrderAcrossGrowthAndWrap) {
  SlotFifo<std::uint32_t> f;
  std::uint32_t next_push = 0, next_pop = 0;
  sim::Rng rng(3);
  for (int op = 0; op < 10000; ++op) {
    if (f.empty() || rng.chance(0.55)) {
      f.push_back(next_push++);
    } else {
      ASSERT_EQ(f.front(), next_pop);
      ASSERT_EQ(f.pop_front(), next_pop++);
    }
    ASSERT_EQ(f.size(), next_push - next_pop);
  }
  while (!f.empty()) ASSERT_EQ(f.pop_front(), next_pop++);
  EXPECT_EQ(next_push, next_pop);
}

TEST(ContextTable, ValuesSurviveRehash) {
  ContextTable<std::uint64_t> t;
  for (std::uint64_t k = 0; k < 500; ++k) t.find_or_insert(k * 7919) = k;
  EXPECT_EQ(t.size(), 500u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    auto* v = t.find(k * 7919);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(t.find(123456789u), nullptr);
  // find_or_insert is idempotent.
  t.find_or_insert(7919) = 77;
  EXPECT_EQ(*t.find(7919), 77u);
  EXPECT_EQ(t.size(), 500u);
}

}  // namespace
}  // namespace dpar::disk
