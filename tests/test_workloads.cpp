// Tests for the benchmark workload generators: coverage, disjointness and
// pattern properties of each access stream.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <variant>
#include <vector>

#include "wl/workloads.hpp"

namespace dpar::wl {
namespace {

using mpi::Op;
using mpi::OpBarrier;
using mpi::OpCompute;
using mpi::OpEnd;
using mpi::OpIo;
using mpi::ProgramContext;
using pfs::Segment;

struct Collected {
  std::vector<mpi::IoCall> calls;
  std::uint64_t barriers = 0;
  sim::Time compute = 0;
};

Collected drain(mpi::Program& prog, std::uint32_t rank, std::uint32_t nprocs,
                bool ghost = false, std::uint64_t max_ops = 1'000'000) {
  ProgramContext ctx;
  ctx.rank = rank;
  ctx.nprocs = nprocs;
  ctx.ghost = ghost;
  Collected c;
  for (std::uint64_t i = 0; i < max_ops; ++i) {
    Op op = prog.next(ctx);
    if (std::holds_alternative<OpEnd>(op)) return c;
    if (auto* io = std::get_if<OpIo>(&op)) {
      if (!ghost && !io->call.is_write && !io->call.segments.empty())
        ctx.last_read_value =
            sim::content_hash(io->call.file, io->call.segments.front().offset);
      c.calls.push_back(std::move(io->call));
    } else if (std::holds_alternative<OpBarrier>(op)) {
      ++c.barriers;
    } else if (auto* comp = std::get_if<OpCompute>(&op)) {
      c.compute += comp->duration;
    }
  }
  ADD_FAILURE() << "program did not terminate";
  return c;
}

std::uint64_t total_bytes(const Collected& c) {
  std::uint64_t sum = 0;
  for (const auto& call : c.calls) sum += call.total_bytes();
  return sum;
}

TEST(Demo, AllRanksTogetherCoverTheFileExactly) {
  DemoConfig cfg;
  cfg.file_size = 4 << 20;
  cfg.segment_size = 4096;
  const std::uint32_t N = 8;
  std::set<std::uint64_t> offsets;
  std::uint64_t bytes = 0;
  for (std::uint32_t r = 0; r < N; ++r) {
    auto prog = make_demo(cfg);
    const auto c = drain(*prog, r, N);
    for (const auto& call : c.calls)
      for (const auto& s : call.segments) {
        EXPECT_TRUE(offsets.insert(s.offset).second) << "overlap at " << s.offset;
        bytes += s.length;
      }
  }
  EXPECT_EQ(bytes, cfg.file_size);
}

TEST(Demo, SixteenSegmentsPerCallWithRankStride) {
  DemoConfig cfg;
  cfg.file_size = 4 << 20;
  cfg.segment_size = 4096;
  auto prog = make_demo(cfg);
  const auto c = drain(*prog, /*rank=*/3, /*nprocs=*/8);
  ASSERT_FALSE(c.calls.empty());
  const auto& segs = c.calls[0].segments;
  ASSERT_EQ(segs.size(), 16u);
  EXPECT_EQ(segs[0].offset, 3u * 4096);
  EXPECT_EQ(segs[1].offset, (8u + 3u) * 4096);  // stride N segments
}

TEST(Demo, ComputeEmittedPerCall) {
  DemoConfig cfg;
  cfg.file_size = 1 << 20;
  cfg.segment_size = 4096;
  cfg.compute_per_call = sim::msec(3);
  auto prog = make_demo(cfg);
  const auto c = drain(*prog, 0, 8);
  EXPECT_EQ(c.compute, sim::msec(3) * static_cast<sim::Time>(c.calls.size()));
}

TEST(MpiIoTest, GloballySequentialCoverage) {
  MpiIoTestConfig cfg;
  cfg.file_size = 8 << 20;
  cfg.request_size = 16 * 1024;
  const std::uint32_t N = 4;
  std::set<std::uint64_t> offsets;
  std::uint64_t bytes = 0;
  for (std::uint32_t r = 0; r < N; ++r) {
    auto prog = make_mpi_io_test(cfg);
    const auto c = drain(*prog, r, N);
    EXPECT_EQ(c.barriers, c.calls.size());  // barrier per call
    for (const auto& call : c.calls) {
      ASSERT_EQ(call.segments.size(), 1u);
      EXPECT_TRUE(offsets.insert(call.segments[0].offset).second);
      bytes += call.segments[0].length;
    }
  }
  EXPECT_EQ(bytes, cfg.file_size);
  // Offsets must tile the file contiguously.
  std::uint64_t expect = 0;
  for (std::uint64_t off : offsets) {
    EXPECT_EQ(off, expect);
    expect += cfg.request_size;
  }
}

TEST(Hpio, RegionsWithSpacing) {
  HpioConfig cfg;
  cfg.region_count = 64;
  cfg.region_size = 32 * 1024;
  cfg.region_spacing = 1024;
  cfg.regions_per_call = 8;
  auto prog = make_hpio(cfg);
  const auto c = drain(*prog, /*rank=*/1, /*nprocs=*/2);
  EXPECT_EQ(c.calls.size(), 8u);
  EXPECT_EQ(total_bytes(c), 64u * 32 * 1024);
  const auto& s = c.calls[0].segments;
  EXPECT_EQ(s[1].offset - s[0].offset, 33u * 1024);  // size + spacing
  // Rank 1's accesses start after rank 0's full region block.
  EXPECT_EQ(s[0].offset, 64u * 33 * 1024);
}

TEST(Ior, RanksOwnDisjointScopes) {
  IorConfig cfg;
  cfg.file_size = 8 << 20;
  cfg.request_size = 32 * 1024;
  const std::uint32_t N = 4;
  std::uint64_t bytes = 0;
  for (std::uint32_t r = 0; r < N; ++r) {
    auto prog = make_ior(cfg);
    const auto c = drain(*prog, r, N);
    const std::uint64_t scope = cfg.file_size / N;
    for (const auto& call : c.calls) {
      EXPECT_GE(call.segments[0].offset, r * scope);
      EXPECT_LT(call.segments[0].end(), (r + 1) * scope + 1);
    }
    bytes += total_bytes(c);
    // Sequential within the scope.
    for (std::size_t i = 1; i < c.calls.size(); ++i)
      EXPECT_EQ(c.calls[i].segments[0].offset,
                c.calls[i - 1].segments[0].end());
  }
  EXPECT_EQ(bytes, cfg.file_size);
}

TEST(Noncontig, ColumnAccessPattern) {
  NoncontigConfig cfg;
  cfg.columns = 4;
  cfg.elmt_count = 8;  // 32-byte wide columns
  cfg.rows = 64;
  cfg.bytes_per_call = 1024;
  auto prog = make_noncontig(cfg);
  const auto c = drain(*prog, /*rank=*/2, /*nprocs=*/4);
  EXPECT_EQ(total_bytes(c), 64u * 32);
  // Row stride = columns * width.
  const auto& s = c.calls[0].segments;
  ASSERT_GE(s.size(), 2u);
  EXPECT_EQ(s[0].offset, 2u * 32);
  EXPECT_EQ(s[1].offset - s[0].offset, 4u * 32);
}

TEST(S3asim, ReadsFragmentsThenWritesResults) {
  S3asimConfig cfg;
  cfg.database_size = 16 << 20;
  cfg.fragments = 4;
  cfg.queries = 3;
  cfg.min_size = 100;
  cfg.max_size = 1000;
  auto prog = make_s3asim(cfg);
  const auto c = drain(*prog, /*rank=*/1, /*nprocs=*/2);
  std::uint64_t reads = 0, writes = 0;
  for (const auto& call : c.calls) {
    if (call.is_write) {
      ++writes;
      EXPECT_EQ(call.file, cfg.result_file);
      EXPECT_GE(call.segments[0].length, cfg.min_size);
      EXPECT_LE(call.segments[0].length, cfg.max_size);
    } else {
      ++reads;
      EXPECT_EQ(call.file, cfg.database_file);
      EXPECT_LT(call.segments[0].end(), cfg.database_size + 1);
    }
  }
  EXPECT_EQ(reads, cfg.queries * cfg.fragments);
  EXPECT_EQ(writes, cfg.queries);
}

TEST(S3asim, DeterministicPerRankStreams) {
  S3asimConfig cfg;
  cfg.queries = 2;
  auto a = make_s3asim(cfg);
  auto b = make_s3asim(cfg);
  const auto ca = drain(*a, 0, 2);
  const auto cb = drain(*b, 0, 2);
  ASSERT_EQ(ca.calls.size(), cb.calls.size());
  for (std::size_t i = 0; i < ca.calls.size(); ++i)
    EXPECT_EQ(ca.calls[i].segments[0].offset, cb.calls[i].segments[0].offset);
  // Different ranks diverge.
  auto c = make_s3asim(cfg);
  const auto cc = drain(*c, 1, 2);
  EXPECT_NE(cc.calls[0].segments[0].offset, ca.calls[0].segments[0].offset);
}

TEST(Btio, CellSizeShrinksWithProcessCount) {
  BtioConfig cfg;
  cfg.total_bytes = 4 << 20;
  cfg.write_steps = 4;
  cfg.read_back = false;
  for (std::uint32_t n : {16u, 64u, 256u}) {
    auto prog = make_btio(cfg);
    const auto c = drain(*prog, 0, n);
    ASSERT_FALSE(c.calls.empty());
    EXPECT_EQ(c.calls[0].segments[0].length, std::max<std::uint64_t>(8, 10240 / n))
        << n << " procs";
  }
}

TEST(Btio, WritePhaseThenReadBackCoversSameBytes) {
  BtioConfig cfg;
  cfg.total_bytes = 2 << 20;
  cfg.write_steps = 4;
  cfg.read_back = true;
  const std::uint32_t N = 16;
  auto prog = make_btio(cfg);
  const auto c = drain(*prog, 3, N);
  std::uint64_t wbytes = 0, rbytes = 0;
  for (const auto& call : c.calls) (call.is_write ? wbytes : rbytes) += call.total_bytes();
  EXPECT_GT(wbytes, 0u);
  EXPECT_EQ(wbytes, rbytes);
  EXPECT_GT(c.barriers, 0u);
}

TEST(Btio, RanksInterleaveWithinRows) {
  BtioConfig cfg;
  cfg.total_bytes = 1 << 20;
  cfg.write_steps = 2;
  cfg.read_back = false;
  const std::uint32_t N = 16;
  auto p0 = make_btio(cfg);
  auto p1 = make_btio(cfg);
  const auto c0 = drain(*p0, 0, N);
  const auto c1 = drain(*p1, 1, N);
  const std::uint64_t cell = 10240 / N;
  EXPECT_EQ(c1.calls[0].segments[0].offset - c0.calls[0].segments[0].offset, cell);
}

TEST(Dependent, NormalRunFollowsData_GhostGuessesWrong) {
  DependentConfig cfg;
  cfg.file_size = 64 << 20;
  cfg.request_size = 64 * 1024;
  cfg.requests = 20;
  auto normal = make_dependent(cfg);
  const auto cn = drain(*normal, 0, 1, /*ghost=*/false);
  auto ghost = make_dependent(cfg);
  const auto cg = drain(*ghost, 0, 1, /*ghost=*/true);
  ASSERT_EQ(cn.calls.size(), cg.calls.size());
  // First request matches (no dependency yet); nearly all others diverge.
  EXPECT_EQ(cn.calls[0].segments[0].offset, cg.calls[0].segments[0].offset);
  int same = 0;
  for (std::size_t i = 1; i < cn.calls.size(); ++i)
    same += (cn.calls[i].segments[0].offset == cg.calls[i].segments[0].offset);
  EXPECT_LE(same, 2);
}

TEST(Dependent, NormalRunIsDeterministic) {
  DependentConfig cfg;
  cfg.requests = 10;
  auto a = make_dependent(cfg);
  auto b = make_dependent(cfg);
  const auto ca = drain(*a, 0, 1);
  const auto cb = drain(*b, 0, 1);
  for (std::size_t i = 0; i < ca.calls.size(); ++i)
    EXPECT_EQ(ca.calls[i].segments[0].offset, cb.calls[i].segments[0].offset);
}

TEST(AllPrograms, CloneContinuesIdentically) {
  DemoConfig cfg;
  cfg.file_size = 1 << 20;
  cfg.segment_size = 4096;
  auto prog = make_demo(cfg);
  ProgramContext ctx;
  ctx.nprocs = 4;
  (void)prog->next(ctx);
  (void)prog->next(ctx);
  auto clone = prog->clone();
  for (int i = 0; i < 20; ++i) {
    Op a = prog->next(ctx);
    Op b = clone->next(ctx);
    ASSERT_EQ(a.index(), b.index());
    if (auto* ia = std::get_if<OpIo>(&a)) {
      auto* ib = std::get_if<OpIo>(&b);
      ASSERT_EQ(ia->call.segments.size(), ib->call.segments.size());
      for (std::size_t k = 0; k < ia->call.segments.size(); ++k)
        EXPECT_EQ(ia->call.segments[k], ib->call.segments[k]);
    }
  }
}

}  // namespace
}  // namespace dpar::wl
