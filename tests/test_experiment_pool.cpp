// ExperimentPool: submission-order result collection, error propagation, and
// the determinism contract — the same seeded experiment run (a) sequentially
// and (b) through pools of 1, 2 and 8 threads yields byte-identical CSV/stat
// output and identical events_fired().
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment_pool.hpp"
#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

/// One deterministic experiment: a small mpi-io-test run. Returns the full
/// artefact a bench would emit — a stat line plus the throughput time series
/// as CSV — so byte-identity covers both tables and CSV exports.
struct ExperimentOutput {
  std::string text;
  std::uint64_t events = 0;
};

ExperimentOutput run_experiment(std::uint64_t request_kb) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  harness::Testbed tb(cfg);
  wl::MpiIoTestConfig mc;
  mc.file_size = 8ull << 20;
  mc.file = tb.create_file("f", mc.file_size);
  mc.request_size = request_kb * 1024;
  mpi::Job& job = tb.add_job("j", 8, tb.dualpar(),
                             [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                             dualpar::Policy::kForcedDataDriven);
  const std::uint64_t events = tb.run();
  std::ostringstream out;
  char buf[128];
  std::snprintf(buf, sizeof buf, "req=%lluKB mbs=%.6f io_s=%.6f events=%llu\n",
                static_cast<unsigned long long>(request_kb),
                tb.job_throughput_mbs(job), tb.total_io_time_s(),
                static_cast<unsigned long long>(events));
  out << buf;
  for (const auto& [t, v] : tb.monitor().throughput_series().points) {
    std::snprintf(buf, sizeof buf, "%lld,%.6f\n", static_cast<long long>(t), v);
    out << buf;
  }
  return {out.str(), events};
}

const std::vector<std::uint64_t> kSweep{4, 8, 16, 32, 64, 128};

TEST(ExperimentPool, PoolRunsAreByteIdenticalToSequential) {
  // (a) the same sweep run twice sequentially must agree with itself...
  std::string sequential;
  std::vector<std::uint64_t> seq_events;
  for (std::uint64_t kb : kSweep) {
    ExperimentOutput o = run_experiment(kb);
    sequential += o.text;
    seq_events.push_back(o.events);
  }
  {
    std::string again;
    for (std::uint64_t kb : kSweep) again += run_experiment(kb).text;
    ASSERT_EQ(sequential, again);
  }
  // (b) ...and with a pool at 1, 2 and 8 threads, byte for byte.
  for (unsigned jobs : {1u, 2u, 8u}) {
    bench::ExperimentPool pool(jobs);
    for (std::uint64_t kb : kSweep)
      pool.submit("req=" + std::to_string(kb), [kb] {
        ExperimentOutput o = run_experiment(kb);
        bench::ExperimentStats s;
        s.value = static_cast<double>(o.text.size());
        s.events = o.events;
        return s;
      });
    const auto& records = pool.wait_all();
    ASSERT_EQ(records.size(), kSweep.size());
    std::string pooled;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].stats.events, seq_events[i])
          << "jobs=" << jobs << " experiment " << i;
      // Re-run inline to collect the text: cheap and keeps the task pure.
      pooled += run_experiment(kSweep[i]).text;
    }
    EXPECT_EQ(sequential, pooled) << "jobs=" << jobs;
  }
}

TEST(ExperimentPool, ResultsArriveInSubmissionOrder) {
  bench::ExperimentPool pool(4);
  // Later submissions finish first; records must still read in order.
  for (int i = 0; i < 8; ++i)
    pool.submit("t" + std::to_string(i), [i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
      return bench::ExperimentStats{static_cast<double>(i), 0, {}};
    });
  const auto& records = pool.wait_all();
  ASSERT_EQ(records.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].label, "t" + std::to_string(i));
    EXPECT_DOUBLE_EQ(records[static_cast<std::size_t>(i)].stats.value, i);
  }
}

TEST(ExperimentPool, RecordBlocksForOneResultOnly) {
  bench::ExperimentPool pool(2);
  const std::size_t fast = pool.submit("fast", [] {
    return bench::ExperimentStats{1.0, 42, {}};
  });
  pool.submit("slow", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return bench::ExperimentStats{2.0, 0, {}};
  });
  EXPECT_DOUBLE_EQ(pool.value(fast), 1.0);
  EXPECT_EQ(pool.record(fast).stats.events, 42u);
  pool.wait_all();
}

TEST(ExperimentPool, ExceptionsPropagateToTheCollector) {
  bench::ExperimentPool pool(2);
  const std::size_t ok = pool.submit("ok", [] {
    return bench::ExperimentStats{7.0, 0, {}};
  });
  const std::size_t bad = pool.submit("bad", []() -> bench::ExperimentStats {
    throw std::runtime_error("experiment exploded");
  });
  EXPECT_DOUBLE_EQ(pool.value(ok), 7.0);
  EXPECT_THROW(pool.value(bad), std::runtime_error);
}

TEST(ExperimentPool, JobsFromEnvHonoursDparJobs) {
  ::setenv("DPAR_JOBS", "3", 1);
  EXPECT_EQ(bench::ExperimentPool::jobs_from_env(), 3u);
  ::setenv("DPAR_JOBS", "0", 1);
  EXPECT_EQ(bench::ExperimentPool::jobs_from_env(), 1u);
  ::unsetenv("DPAR_JOBS");
  EXPECT_GE(bench::ExperimentPool::jobs_from_env(), 1u);
}

TEST(ExperimentPool, AuxMetricsRoundTrip) {
  bench::ExperimentPool pool(1);
  const std::size_t i = pool.submit("aux", [] {
    return bench::ExperimentStats{1.5, 9, {0.25, 0.75}};
  });
  const bench::ExperimentRecord& r = pool.record(i);
  ASSERT_EQ(r.stats.aux.size(), 2u);
  EXPECT_DOUBLE_EQ(r.stats.aux[0], 0.25);
  EXPECT_DOUBLE_EQ(r.stats.aux[1], 0.75);
  EXPECT_GE(r.wall_s, 0.0);
}

}  // namespace
}  // namespace dpar
