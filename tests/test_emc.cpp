// Unit tests for the EMC daemon: metric plumbing, threshold decisions,
// confirmation/dwell damping, mis-prefetch latching, policies.
#include <gtest/gtest.h>

#include <memory>

#include "dualpar/emc.hpp"
#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar::dualpar {
namespace {

struct EmcFixture : ::testing::Test {
  harness::TestbedConfig cfg;
  std::unique_ptr<harness::Testbed> tb;
  mpi::Job* job = nullptr;

  void SetUp() override {
    cfg.data_servers = 2;
    cfg.compute_nodes = 2;
    cfg.dualpar.emc_confirm_slots = 1;  // immediate decisions for unit tests
    cfg.dualpar.emc_min_dwell = 0;
    tb = std::make_unique<harness::Testbed>(cfg);
    // An instantly-terminating job to hang decisions on: it issues no I/O of
    // its own, so the fixtures fully control the observed request stream.
    wl::DemoConfig dc;
    dc.file = tb->create_file("f", 1 << 20);
    dc.file_size = 0;
    dc.segment_size = 4096;
    job = &tb->add_job("j", 1, tb->vanilla(),
                       [dc](std::uint32_t) { return wl::make_demo(dc); },
                       Policy::kAdaptive);
  }
};

TEST_F(EmcFixture, DefaultModeIsNormal) {
  EXPECT_EQ(tb->emc().mode(job->id()), Mode::kNormal);
  EXPECT_EQ(tb->emc().mode(9999), Mode::kNormal);  // unknown job
}

TEST_F(EmcFixture, ForcedPoliciesPinTheMode) {
  wl::DemoConfig dc;
  dc.file = tb->create_file("g", 1 << 20);
  dc.file_size = 64 * 1024;
  dc.segment_size = 4096;
  auto& forced = tb->add_job("forced", 1, tb->vanilla(),
                             [dc](std::uint32_t) { return wl::make_demo(dc); },
                             Policy::kForcedDataDriven);
  EXPECT_EQ(tb->emc().mode(forced.id()), Mode::kDataDriven);
  tb->emc().tick();
  EXPECT_EQ(tb->emc().mode(forced.id()), Mode::kDataDriven);
}

TEST_F(EmcFixture, MisprefetchLatchesAndReverts) {
  auto& emc = tb->emc();
  // Force data-driven via an adaptive entry by reporting a high ratio
  // directly against the latch.
  emc.report_misprefetch(job->id(), 0.9);
  EXPECT_TRUE(emc.latched_off(job->id()));
  EXPECT_EQ(emc.mode(job->id()), Mode::kNormal);
}

TEST_F(EmcFixture, LowMisprefetchDoesNotLatch) {
  tb->emc().report_misprefetch(job->id(), 0.05);
  tb->emc().report_misprefetch(job->id(), 0.10);
  EXPECT_FALSE(tb->emc().latched_off(job->id()));
}

TEST_F(EmcFixture, EwmaOfMisprefetchSmoothsSpikes) {
  // One high report after several clean rounds keeps the average below the
  // 20% threshold (alpha = 0.5).
  auto& emc = tb->emc();
  emc.report_misprefetch(job->id(), 0.0);
  emc.report_misprefetch(job->id(), 0.0);
  emc.report_misprefetch(job->id(), 0.3);
  EXPECT_FALSE(emc.latched_off(job->id()));
  emc.report_misprefetch(job->id(), 0.9);
  EXPECT_TRUE(emc.latched_off(job->id()));
}

TEST_F(EmcFixture, ObservationsFeedReqDist) {
  auto& emc = tb->emc();
  std::vector<pfs::Segment> segs;
  for (int i = 0; i < 8; ++i)
    segs.push_back(pfs::Segment{static_cast<std::uint64_t>(i) * 32768, 16384});
  emc.observe(job->id(), 1, segs, tb->engine().now());
  tb->engine().run_until(sim::msec(600));
  emc.tick();
  EXPECT_DOUBLE_EQ(emc.last_req_dist_bytes(), 32768.0);
}

TEST_F(EmcFixture, ObservationsForUnknownJobsIgnored) {
  tb->emc().observe(424242, 1, {pfs::Segment{0, 4096}}, 0);
  tb->engine().run_until(sim::msec(600));
  tb->emc().tick();
  EXPECT_DOUBLE_EQ(tb->emc().last_req_dist_bytes(), 0.0);
}

TEST(EmcDamping, ConfirmSlotsPreventSingleSlotFlips) {
  // End-to-end: two interfering strided jobs under adaptive policy with the
  // default damping must switch a small number of times, not per-slot.
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  const std::uint64_t fsize = 48 << 20;
  wl::DemoConfig d1, d2;
  d1.file = tb.create_file("a", fsize);
  d2.file = tb.create_file("b", fsize);
  d1.file_size = d2.file_size = fsize;
  d1.segment_size = d2.segment_size = 16 * 1024;
  tb.add_job("a", 2, tb.dualpar(), [&](std::uint32_t) { return wl::make_demo(d1); },
             Policy::kAdaptive);
  tb.add_job("b", 2, tb.dualpar(), [&](std::uint32_t) { return wl::make_demo(d2); },
             Policy::kAdaptive);
  tb.run();
  EXPECT_GT(tb.emc().mode_switches(), 0u);
  EXPECT_LE(tb.emc().mode_switches(), 8u);  // damped, not flapping
}

TEST(EmcAdaptive, SoloSequentialJobStaysNormal) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::MpiIoTestConfig mc;
  mc.file_size = 32 << 20;
  mc.file = tb.create_file("f", mc.file_size);
  mc.request_size = 16 * 1024;
  auto& job = tb.add_job("solo", 4, tb.dualpar(),
                         [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                         Policy::kAdaptive);
  tb.run();
  EXPECT_TRUE(job.finished());
  // A lone sequential program never justifies the data-driven mode.
  EXPECT_EQ(tb.emc().mode_switches(), 0u);
  EXPECT_EQ(tb.dualpar().stats().cycles, 0u);
}

TEST(EmcAdaptive, LowIoRatioBlocksDataDrivenModeDespiteBadSeeks) {
  // Two interfering strided jobs, but compute-dominated (I/O ratio << 80%):
  // the second EMC condition must keep both in computation-driven mode.
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  const std::uint64_t fsize = 8 << 20;
  wl::DemoConfig d1, d2;
  d1.file = tb.create_file("a", fsize);
  d2.file = tb.create_file("b", fsize);
  d1.file_size = d2.file_size = fsize;
  d1.segment_size = d2.segment_size = 16 * 1024;
  d1.compute_per_call = d2.compute_per_call = sim::msec(200);  // ~compute-bound
  auto& j1 = tb.add_job("a", 2, tb.dualpar(),
                        [&](std::uint32_t) { return wl::make_demo(d1); },
                        Policy::kAdaptive);
  auto& j2 = tb.add_job("b", 2, tb.dualpar(),
                        [&](std::uint32_t) { return wl::make_demo(d2); },
                        Policy::kAdaptive);
  tb.run();
  EXPECT_TRUE(j1.finished());
  EXPECT_TRUE(j2.finished());
  EXPECT_EQ(tb.dualpar().stats().cycles, 0u);
  EXPECT_EQ(tb.emc().mode_switches(), 0u);
}

TEST(EmcSeries, SeekSeriesIsRecordedPerSlot) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 16 << 20);
  dc.file_size = 16 << 20;
  dc.segment_size = 16 * 1024;
  tb.add_job("j", 2, tb.vanilla(), [dc](std::uint32_t) { return wl::make_demo(dc); },
             Policy::kAdaptive);
  tb.run();
  EXPECT_GE(tb.emc().seek_series().points.size(), 1u);
}

}  // namespace
}  // namespace dpar::dualpar
