// Tests for striping math, the extent allocator, data server and the
// client list-I/O path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/device.hpp"
#include "net/network.hpp"
#include "pfs/file_system.hpp"
#include "pfs/layout.hpp"
#include "pfs/server.hpp"
#include "sim/engine.hpp"

namespace dpar::pfs {
namespace {

using sim::Engine;

TEST(StripeLayout, ServerAssignmentRoundRobin) {
  StripeLayout l{64 * 1024, 4};
  EXPECT_EQ(l.server_of(0), 0u);
  EXPECT_EQ(l.server_of(64 * 1024), 1u);
  EXPECT_EQ(l.server_of(3 * 64 * 1024), 3u);
  EXPECT_EQ(l.server_of(4 * 64 * 1024), 0u);
  EXPECT_EQ(l.server_of(64 * 1024 - 1), 0u);
}

TEST(StripeLayout, ServerLocalOffsetsAreContiguousPerServer) {
  StripeLayout l{64 * 1024, 4};
  // Stripes 0 and 4 both live on server 0, back to back locally.
  EXPECT_EQ(l.server_local_offset(0), 0u);
  EXPECT_EQ(l.server_local_offset(4 * 64 * 1024), 64u * 1024);
  EXPECT_EQ(l.server_local_offset(8 * 64 * 1024 + 100), 2u * 64 * 1024 + 100);
}

TEST(StripeLayout, ServerShareSumsToFileSize) {
  StripeLayout l{64 * 1024, 9};
  for (std::uint64_t size : {0ull, 1000ull, 64ull * 1024, 10ull << 20, (10ull << 20) + 777}) {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < l.num_servers; ++s) total += l.server_share(s, size);
    EXPECT_EQ(total, size) << "size=" << size;
  }
}

TEST(DecomposeSegment, CoversExactlyAndCoalesces) {
  StripeLayout l{64 * 1024, 3};
  std::vector<std::vector<ServerRun>> per_server;
  // 5 stripes + a bit: servers 0,1,2,0,1,2.
  Segment seg{10, 5 * 64 * 1024};
  decompose_segment(l, seg, per_server);
  std::uint64_t total = 0;
  for (const auto& runs : per_server)
    for (const auto& r : runs) total += r.length;
  EXPECT_EQ(total, seg.length);
  // Server 0 gets stripes 0 and 3; they are locally contiguous only if the
  // pieces touch: stripe 0 piece is [10, 64K), stripe 3 piece is [64K, 128K)
  // in local space -> not coalescible because the first run ends at 64K
  // local and the next starts at 64K local => they DO coalesce.
  ASSERT_EQ(per_server[0].size(), 1u);
  EXPECT_EQ(per_server[0][0].local_offset, 10u);
}

TEST(DecomposeSegment, SmallSegmentSingleServer) {
  StripeLayout l{64 * 1024, 9};
  std::vector<std::vector<ServerRun>> per_server;
  Segment seg{64 * 1024 + 5, 100};
  decompose_segment(l, seg, per_server);
  ASSERT_EQ(per_server[1].size(), 1u);
  EXPECT_EQ(per_server[1][0].local_offset, 5u);
  EXPECT_EQ(per_server[1][0].length, 100u);
  for (std::uint32_t s = 0; s < 9; ++s)
    if (s != 1) {
      EXPECT_TRUE(per_server[s].empty());
    }
}

struct PfsFixture : ::testing::Test {
  static constexpr std::uint32_t kServers = 3;
  Engine eng;
  net::Network net{eng, kServers + 2};  // servers on 0..2, mds on 3, client on 4
  std::vector<std::unique_ptr<DataServer>> servers;
  std::unique_ptr<FileSystem> fs;
  std::unique_ptr<Client> client;

  void SetUp() override {
    std::vector<DataServer*> raw;
    for (std::uint32_t s = 0; s < kServers; ++s) {
      auto dev = std::make_unique<disk::DiskDevice>(eng, disk::DiskParams{},
                                                    disk::make_cfq_scheduler());
      servers.push_back(std::make_unique<DataServer>(eng, s, std::move(dev)));
      raw.push_back(servers.back().get());
    }
    fs = std::make_unique<FileSystem>(eng, net, /*metadata_node=*/3, raw,
                                      StripeLayout{64 * 1024, kServers});
    client = std::make_unique<Client>(*fs, /*node=*/4);
  }
};

TEST_F(PfsFixture, OpenRoundTripsThroughMetadataServer) {
  const FileId f = fs->create("a", 1 << 20);
  bool opened = false;
  client->open(f, [&] { opened = true; });
  eng.run();
  EXPECT_TRUE(opened);
  EXPECT_GE(net.messages_sent(), 2u);
}

TEST_F(PfsFixture, ReadCompletesWithByteCount) {
  const FileId f = fs->create("a", 8 << 20);
  std::uint64_t got = 0;
  client->io(f, {Segment{0, 1 << 20}}, /*is_write=*/false, 1,
             [&](std::uint64_t b, fault::Status) { got = b; });
  eng.run();
  EXPECT_EQ(got, 1u << 20);
  // 1 MB over 3 servers with 64 KB stripes: coalesced into one run each.
  std::uint64_t served = 0;
  for (auto& s : servers) served += s->bytes_read();
  EXPECT_EQ(served, 1u << 20);
}

TEST_F(PfsFixture, WriteReachesAllServers) {
  const FileId f = fs->create("a", 8 << 20);
  std::uint64_t got = 0;
  client->io(f, {Segment{0, 192 * 1024}}, /*is_write=*/true, 1,
             [&](std::uint64_t b, fault::Status) { got = b; });
  eng.run();
  EXPECT_EQ(got, 192u * 1024);
  for (auto& s : servers) EXPECT_EQ(s->bytes_written(), 64u * 1024);
}

TEST_F(PfsFixture, MultiSegmentListIo) {
  const FileId f = fs->create("a", 64 << 20);
  std::vector<Segment> segs;
  for (int i = 0; i < 16; ++i)
    segs.push_back(Segment{static_cast<std::uint64_t>(i) * 256 * 1024, 4096});
  std::uint64_t got = 0;
  client->io(f, segs, false, 1, [&](std::uint64_t b, fault::Status) { got = b; });
  eng.run();
  EXPECT_EQ(got, 16u * 4096);
}

TEST_F(PfsFixture, EmptySegmentsCompleteImmediately) {
  const FileId f = fs->create("a", 1 << 20);
  bool called = false;
  client->io(f, {}, false, 1, [&](std::uint64_t b, fault::Status) {
    called = true;
    EXPECT_EQ(b, 0u);
  });
  eng.run();
  EXPECT_TRUE(called);
}

TEST_F(PfsFixture, SequentialWholeFileReadIsContiguousOnDisk) {
  const FileId f = fs->create("a", 16 << 20);
  // Read the whole file in 64 KB calls; each server must see ascending LBNs
  // with no long seeks after the first.
  std::uint64_t off = 0;
  std::function<void(std::uint64_t, fault::Status)> step = [&](std::uint64_t, fault::Status) {
    if (off >= (16u << 20)) return;
    const Segment seg{off, 64 * 1024};
    off += 64 * 1024;
    client->io(f, {seg}, false, 1, step);
  };
  step(0, fault::Status::kOk);
  eng.run();
  for (auto& s : servers) {
    const auto& evs = s->trace().events();
    ASSERT_FALSE(evs.empty());
    for (std::size_t i = 1; i < evs.size(); ++i) {
      EXPECT_GE(evs[i].lba, evs[i - 1].lba);
      EXPECT_LE(evs[i].seek_distance, 128u);
    }
  }
}

TEST_F(PfsFixture, DistinctFilesOccupyDistantRegions) {
  const FileId a = fs->create("a", 64 << 20);
  const FileId b = fs->create("b", 64 << 20);
  std::uint64_t lba_a = 0, lba_b = 0;
  client->io(a, {Segment{0, 4096}}, false, 1, [](std::uint64_t, fault::Status) {});
  eng.run();
  lba_a = servers[0]->trace().events().back().lba;
  client->io(b, {Segment{0, 4096}}, false, 1, [](std::uint64_t, fault::Status) {});
  eng.run();
  lba_b = servers[0]->trace().events().back().lba;
  // b's extent starts beyond a's share plus the inter-file gap.
  EXPECT_GT(lba_b, lba_a + disk::bytes_to_sectors((64u << 20) / 3));
}

TEST_F(PfsFixture, AllocatorRejectsOversizedFile) {
  EXPECT_THROW(fs->create("huge", 4ull << 40), std::runtime_error);
}

}  // namespace
}  // namespace dpar::pfs
