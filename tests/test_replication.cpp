// N-way chunk replication: placement maps, replicated write fan-out,
// degraded reads with transparent failover, background re-replication, and
// the durability ledger. The byte-identity contract extends to replicated
// runs: a (seed, plan, rf, placement) tuple must produce the same output at
// every DPAR_PDES_WORKERS value, workers=0 (serial engine) as reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "harness/testbed.hpp"
#include "metrics/fault_report.hpp"
#include "metrics/replica_report.hpp"
#include "replica/placement.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

replica::ReplicaMap make_map(std::uint32_t servers, std::uint32_t rf,
                             replica::Placement p,
                             std::uint32_t num_racks = 3) {
  replica::ReplicaConfig cfg;
  cfg.replication_factor = rf;
  cfg.placement = p;
  cfg.num_racks = num_racks;
  cfg.validate(servers);
  std::vector<std::uint32_t> racks(servers);
  for (std::uint32_t s = 0; s < servers; ++s) racks[s] = s % num_racks;
  return replica::ReplicaMap(pfs::StripeLayout{64 * 1024, servers}, cfg,
                             std::move(racks));
}

// ---------------------------------------------------------------------------
// Placement unit tests
// ---------------------------------------------------------------------------

TEST(ReplicationPlacement, RolesLandOnDistinctServersAndRoleZeroIsPrimary) {
  for (const replica::Placement p :
       {replica::Placement::kNodeLocal, replica::Placement::kRotational,
        replica::Placement::kRackAware}) {
    const replica::ReplicaMap map = make_map(9, 3, p);
    for (std::uint64_t stripe = 0; stripe < 200; ++stripe) {
      std::set<std::uint32_t> servers;
      for (std::uint32_t r = 0; r < 3; ++r)
        servers.insert(map.server_of(stripe, r));
      EXPECT_EQ(servers.size(), 3u) << to_string(p) << " stripe " << stripe;
      EXPECT_EQ(map.server_of(stripe, 0), stripe % 9)
          << to_string(p) << " role 0 must match the unreplicated layout";
    }
  }
}

TEST(ReplicationPlacement, RackAwareSpreadsCopiesOverRacks) {
  const replica::ReplicaMap map = make_map(9, 3, replica::Placement::kRackAware);
  for (std::uint64_t stripe = 0; stripe < 200; ++stripe) {
    std::set<std::uint32_t> racks;
    for (std::uint32_t r = 0; r < 3; ++r)
      racks.insert(map.rack_of(map.server_of(stripe, r)));
    // 9 servers over 3 racks: a fresh rack exists for every copy.
    EXPECT_EQ(racks.size(), 3u) << "stripe " << stripe;
  }
  // Degenerate case: more copies than racks still yields distinct servers.
  const replica::ReplicaMap two = make_map(4, 3, replica::Placement::kRackAware,
                                           /*num_racks=*/2);
  for (std::uint64_t stripe = 0; stripe < 40; ++stripe) {
    std::set<std::uint32_t> servers, racks;
    for (std::uint32_t r = 0; r < 3; ++r) {
      servers.insert(two.server_of(stripe, r));
      racks.insert(two.rack_of(two.server_of(stripe, r)));
    }
    EXPECT_EQ(servers.size(), 3u);
    EXPECT_EQ(racks.size(), 2u) << "both racks must hold a copy";
  }
}

TEST(ReplicationPlacement, RotationalSpreadsAReplicaLoadOverTheCluster) {
  // Chained declustering: the replicas of one primary's chunks must not all
  // pile onto a single successor (that is kNodeLocal's behaviour).
  const replica::ReplicaMap map = make_map(9, 2, replica::Placement::kRotational);
  std::set<std::uint32_t> replica_servers;
  for (std::uint64_t stripe = 0; stripe < 9 * 8; stripe += 9)
    replica_servers.insert(map.server_of(stripe, 1));  // primary is server 0
  EXPECT_GT(replica_servers.size(), 1u);
}

TEST(ReplicationPlacement, ReplicaRegionsAreDisjointPerRole) {
  const replica::ReplicaMap map = make_map(4, 3, replica::Placement::kRotational);
  const std::uint64_t size = 10ull << 20;
  const std::uint64_t unit = 64 * 1024;
  // Every copy's local offset must stay inside its role's region and inside
  // the allocated extent; regions of different roles must not interleave.
  std::uint64_t role1_max = 0, role2_min = UINT64_MAX;
  for (std::uint64_t off = 0; off < size; off += unit) {
    const std::uint64_t l0 = map.replica_local_offset(size, off, 0);
    const std::uint64_t l1 = map.replica_local_offset(size, off, 1);
    const std::uint64_t l2 = map.replica_local_offset(size, off, 2);
    EXPECT_LT(l0, l1);
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, map.extent_bytes(size));
    role1_max = std::max(role1_max, l1 + unit);
    role2_min = std::min(role2_min, l2);
  }
  EXPECT_LE(role1_max, role2_min) << "role regions interleave";
}

TEST(ReplicationConfig, ValidateRejectsMalformedConfigs) {
  replica::ReplicaConfig cfg;
  cfg.replication_factor = 0;
  EXPECT_THROW(cfg.validate(9), std::invalid_argument);
  cfg.replication_factor = 10;
  EXPECT_THROW(cfg.validate(9), std::invalid_argument);
  cfg.replication_factor = 3;
  cfg.num_racks = 0;
  EXPECT_THROW(cfg.validate(9), std::invalid_argument);
  cfg.num_racks = 3;
  cfg.repair_bandwidth = 0;
  EXPECT_THROW(cfg.validate(9), std::invalid_argument);
  cfg.repair_bandwidth = 40e6;
  EXPECT_NO_THROW(cfg.validate(9));
  // The testbed rejects them too, before any simulation state exists.
  harness::TestbedConfig tcfg;
  tcfg.replica.replication_factor = tcfg.data_servers + 1;
  EXPECT_THROW(harness::Testbed{tcfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replicated runs: determinism across worker counts
// ---------------------------------------------------------------------------

/// Same shape as test_pdes_faults' random_plan: probabilistic faults, one
/// transient partition, one crash/restart window, all drawn from `seed`.
fault::FaultPlan random_plan(std::uint64_t seed, std::uint32_t servers,
                             std::uint32_t compute_nodes) {
  sim::Rng rng(sim::splitmix64(seed));
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.disk.stall_rate = 0.02 + 0.08 * rng.uniform01();
  plan.disk.stall_time = sim::msec(1) + sim::msec(rng.uniform(4));
  plan.net.drop_rate = 0.002 + 0.006 * rng.uniform01();
  plan.net.delay_rate = 0.01 + 0.04 * rng.uniform01();
  plan.net.delay_time = sim::msec(1) + sim::msec(rng.uniform(4));
  fault::NetFaults::Partition part;
  part.node_a = rng.uniform(servers);
  part.node_b = servers + 1 + rng.uniform(compute_nodes);
  part.start = sim::msec(40 + rng.uniform(40));
  part.end = part.start + sim::msec(30 + rng.uniform(60));
  plan.net.partitions.push_back(part);
  fault::ServerFaults::Crash crash;
  crash.server = rng.uniform(servers);
  crash.at = sim::msec(60 + rng.uniform(60));
  crash.restart_at = crash.at + sim::msec(80 + rng.uniform(80));
  plan.server.crashes.push_back(crash);
  plan.validate();
  return plan;
}

/// Everything a replicated run observably produces, flattened: completion,
/// bytes, events, latency tails, the fault ledger AND the durability report.
std::string rep_signature(std::uint64_t seed, int workers, std::uint32_t rf,
                          replica::Placement placement,
                          replica::WriteFanout fanout) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  cfg.keep_traces = false;
  cfg.pdes_workers = workers;
  cfg.replica.replication_factor = rf;
  cfg.replica.placement = placement;
  cfg.replica.fanout = fanout;
  cfg.fault = random_plan(seed, cfg.data_servers, cfg.compute_nodes);
  harness::Testbed tb(cfg);
  wl::DemoConfig wr;
  wr.file = tb.create_file("w", 3ull << 20);
  wr.file_size = 3ull << 20;
  wr.segment_size = 64 * 1024;
  wr.is_write = true;
  wl::DemoConfig rd;
  rd.file = tb.create_file("r", 3ull << 20);
  rd.file_size = 3ull << 20;
  rd.segment_size = 64 * 1024;
  mpi::Job& writer = tb.add_job("w", 6, tb.vanilla(),
                                [wr](std::uint32_t) { return wl::make_demo(wr); },
                                dualpar::Policy::kForcedNormal);
  mpi::Job& reader = tb.add_job("r", 6, tb.vanilla(),
                                [rd](std::uint32_t) { return wl::make_demo(rd); },
                                dualpar::Policy::kForcedNormal);
  const std::uint64_t events = tb.run();
  std::string sig;
  sig += "w_completion=" + std::to_string(writer.completion_time());
  sig += " r_completion=" + std::to_string(reader.completion_time());
  sig += " bytes=" + std::to_string(writer.total_bytes() + reader.total_bytes());
  sig += " events=" + std::to_string(events);
  const sim::Histogram lat = reader.read_latency();
  sig += " rd_n=" + std::to_string(lat.count());
  sig += " rd_p99=" + std::to_string(lat.percentile(0.99));
  sig += "\n" + metrics::format_fault_report(tb.fault_injector()->total());
  sig += metrics::format_replica_report(tb.replica_manager()->report());
  return sig;
}

TEST(ReplicationDeterminism, ByteIdenticalAcrossWorkerCounts) {
  struct Case {
    std::uint64_t seed;
    std::uint32_t rf;
    replica::Placement placement;
    replica::WriteFanout fanout;
  };
  const Case cases[] = {
      {0xfade, 2, replica::Placement::kRotational, replica::WriteFanout::kStar},
      {0xc0de, 3, replica::Placement::kRackAware, replica::WriteFanout::kStar},
      {0xbeef, 3, replica::Placement::kNodeLocal, replica::WriteFanout::kChain},
  };
  for (const Case& c : cases) {
    const std::string w0 =
        rep_signature(c.seed, 0, c.rf, c.placement, c.fanout);
    for (int workers : {1, 4}) {
      const std::string w =
          rep_signature(c.seed, workers, c.rf, c.placement, c.fanout);
      EXPECT_EQ(w0, w) << "seed " << std::hex << c.seed << std::dec << " rf "
                       << c.rf << " workers=" << workers;
    }
  }
}

TEST(ReplicationDeterminism, LedgerIsNonTrivialUnderThePlan) {
  // Guard against the determinism sweep passing vacuously: the randomized
  // plans must actually invalidate copies and drive repair traffic.
  const std::string sig = rep_signature(
      0xfade, 1, 2, replica::Placement::kRotational, replica::WriteFanout::kStar);
  EXPECT_NE(sig.find("server_crashes: 1"), std::string::npos) << sig;
  EXPECT_EQ(sig.find("chunks_invalidated: 0\n"), std::string::npos) << sig;
  EXPECT_EQ(sig.find("repair_ops_completed: 0\n"), std::string::npos) << sig;
}

// ---------------------------------------------------------------------------
// Durability properties
// ---------------------------------------------------------------------------

struct DurabilityOut {
  replica::DurabilityReport report;
  fault::Counters fault_counters;
  std::uint64_t reader_bytes = 0;
};

DurabilityOut run_single_crash(std::uint64_t seed, std::uint32_t rf,
                               replica::Placement placement) {
  sim::Rng rng(sim::splitmix64(seed));
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  cfg.keep_traces = false;
  cfg.replica.replication_factor = rf;
  cfg.replica.placement = placement;
  fault::ServerFaults::Crash crash;
  crash.server = rng.uniform(cfg.data_servers);
  crash.at = sim::msec(20 + rng.uniform(60));
  crash.restart_at = crash.at + sim::msec(100 + rng.uniform(200));
  cfg.fault.server.crashes.push_back(crash);
  harness::Testbed tb(cfg);
  wl::DemoConfig wr;
  wr.file = tb.create_file("w", 2ull << 20);
  wr.file_size = 2ull << 20;
  wr.segment_size = 64 * 1024;
  wr.is_write = true;
  wl::DemoConfig rd;
  rd.file = tb.create_file("r", 2ull << 20);
  rd.file_size = 2ull << 20;
  rd.segment_size = 64 * 1024;
  tb.add_job("w", 6, tb.vanilla(),
             [wr](std::uint32_t) { return wl::make_demo(wr); },
             dualpar::Policy::kForcedNormal);
  mpi::Job& reader = tb.add_job("r", 6, tb.vanilla(),
                                [rd](std::uint32_t) { return wl::make_demo(rd); },
                                dualpar::Policy::kForcedNormal);
  tb.run();
  return DurabilityOut{tb.replica_manager()->report(),
                       tb.fault_injector()->total(), reader.total_bytes()};
}

TEST(ReplicationDurability, SingleRestartingCrashLosesNothingAtRf2Plus) {
  // The tentpole property: with rf >= 2, any single-server crash that
  // restarts leaves zero lost chunks, every read completes, and background
  // re-replication restores full redundancy before the run drains.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (const std::uint32_t rf : {2u, 3u}) {
      const DurabilityOut out = run_single_crash(
          seed, rf, rf == 2 ? replica::Placement::kRotational
                            : replica::Placement::kRackAware);
      SCOPED_TRACE("seed " + std::to_string(seed) + " rf " + std::to_string(rf));
      // The crash dirtied the dead server's copies...
      EXPECT_GT(out.report.counters.chunks_invalidated, 0u);
      // ...repair re-copied every one of them from surviving replicas...
      EXPECT_GT(out.report.counters.repair_ops_completed, 0u);
      EXPECT_GT(out.report.counters.repair_bytes_copied, 0u);
      EXPECT_EQ(out.report.under_replicated_now, 0u);
      EXPECT_EQ(out.report.invalid_copies_now, 0u);
      // ...nothing was lost, and every client op finished.
      EXPECT_EQ(out.report.lost_chunks, 0u);
      EXPECT_EQ(out.report.counters.chunks_unrepairable, 0u);
      EXPECT_EQ(out.fault_counters.client_ops_started,
                out.fault_counters.client_ops_finished);
      EXPECT_EQ(out.reader_bytes, 2ull << 20);
      // Redundancy pressure was real while it lasted.
      EXPECT_GT(out.report.under_replicated_chunk_seconds, 0.0);
    }
  }
}

TEST(ReplicationDurability, DegradedReadsFailOverDuringALongOutage) {
  // An outage longer than the read-failover patience (timeout + backoff +
  // timeout, ~250 ms under the default retry policy): reads whose primary is
  // down must switch to a surviving replica instead of waiting the outage
  // out, and no read may run out of replicas.
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  cfg.keep_traces = false;
  cfg.replica.replication_factor = 2;
  cfg.fault.server.crashes.push_back(
      {/*server=*/1, sim::msec(20), sim::msec(900)});
  harness::Testbed tb(cfg);
  wl::DemoConfig rd;
  rd.file = tb.create_file("r", 4ull << 20);
  rd.file_size = 4ull << 20;
  rd.segment_size = 64 * 1024;
  mpi::Job& reader = tb.add_job("r", 6, tb.vanilla(),
                                [rd](std::uint32_t) { return wl::make_demo(rd); },
                                dualpar::Policy::kForcedNormal);
  tb.run();
  const replica::DurabilityReport rep = tb.replica_manager()->report();
  EXPECT_GT(rep.counters.degraded_reads, 0u);
  EXPECT_GT(rep.counters.failover_shards, 0u);
  EXPECT_GT(rep.counters.failover_latency_ns, 0u);
  EXPECT_EQ(rep.counters.out_of_replica_reads, 0u);
  EXPECT_EQ(reader.total_bytes(), 4ull << 20);
  EXPECT_EQ(rep.lost_chunks, 0u);
}

TEST(ReplicationDurability, Rf1KeepsThePreReplicationPath) {
  // replication_factor == 1 must not even build the subsystem: no manager,
  // no replica regions, the legacy request path byte-for-byte.
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  harness::Testbed tb(cfg);
  EXPECT_EQ(tb.replica_manager(), nullptr);
  EXPECT_EQ(tb.fs().replicas(), nullptr);
}

// ---------------------------------------------------------------------------
// Fail-stop crashes (kNeverRestarts)
// ---------------------------------------------------------------------------

TEST(ReplicationDurability, FailStopCrashBlocksRepairButLosesNoChunkAtRf2) {
  // A server that never restarts: its own copies cannot be rebuilt (fixed
  // placement cannot re-home them), but every chunk still has a valid copy
  // elsewhere at rf >= 2, so nothing is lost and reads keep completing
  // through failover.
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  cfg.keep_traces = false;
  cfg.replica.replication_factor = 2;
  cfg.fault.server.crashes.push_back(
      {/*server=*/2, sim::msec(20), fault::kNeverRestarts});
  harness::Testbed tb(cfg);
  wl::DemoConfig rd;
  rd.file = tb.create_file("r", 2ull << 20);
  rd.file_size = 2ull << 20;
  rd.segment_size = 64 * 1024;
  mpi::Job& reader = tb.add_job("r", 6, tb.vanilla(),
                                [rd](std::uint32_t) { return wl::make_demo(rd); },
                                dualpar::Policy::kForcedNormal);
  tb.run();
  const replica::DurabilityReport rep = tb.replica_manager()->report();
  EXPECT_EQ(reader.total_bytes(), 2ull << 20);
  EXPECT_EQ(rep.lost_chunks, 0u);
  EXPECT_GT(rep.counters.repair_blocked_permanent, 0u);
  EXPECT_GT(rep.under_replicated_now, 0u)
      << "a fail-stop server's copies stay unrebuilt under fixed placement";
  EXPECT_GT(rep.counters.degraded_reads, 0u);
}

#if DPAR_CHECK_INVARIANTS
TEST(ReplicationDeath, OutOfReplicaRoleTripsAssert) {
  // The failover ladder must stop at rf-1: asking the map for a role past
  // the last replica is the bug the invariant layer exists to catch.
  const replica::ReplicaMap map = make_map(4, 2, replica::Placement::kRotational);
  EXPECT_DEATH(map.server_of(0, 2), "replica role out of range");
}
#endif

}  // namespace
}  // namespace dpar
