// Shape-regression suite: every qualitative claim the reproduction makes
// about the paper's figures is pinned here at miniature scale, so a
// refactoring that silently breaks "who wins" fails the build, not the
// bench read-through.
#include <gtest/gtest.h>

#include <string>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

enum class Drv { kVanilla, kCollective, kDualPar, kPreexec };

double run_mpiiotest(Drv d, std::uint64_t fsize, int instances = 1,
                     sim::Time compute = 0) {
  harness::Testbed tb;  // paper-shaped cluster (9 servers, 4 nodes)
  for (int i = 0; i < instances; ++i) {
    wl::MpiIoTestConfig c;
    c.file_size = fsize;
    c.file = tb.create_file("f" + std::to_string(i), fsize);
    c.request_size = 16 * 1024;
    c.compute_per_call = compute;
    c.collective = (d == Drv::kCollective);
    tb.add_job("m" + std::to_string(i), 64,
               d == Drv::kVanilla      ? static_cast<mpi::IoDriver&>(tb.vanilla())
               : d == Drv::kCollective ? static_cast<mpi::IoDriver&>(tb.collective())
               : d == Drv::kDualPar    ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                       : static_cast<mpi::IoDriver&>(tb.preexec()),
               [c](std::uint32_t) { return wl::make_mpi_io_test(c); },
               d == Drv::kDualPar ? dualpar::Policy::kForcedDataDriven
                                  : dualpar::Policy::kForcedNormal);
  }
  tb.run();
  return tb.system_throughput_mbs();
}

TEST(Fig3Shape, DualParWinsSingleAppSequentialRead) {
  const std::uint64_t fsize = 64 << 20;
  const double vanilla = run_mpiiotest(Drv::kVanilla, fsize);
  const double dualpar = run_mpiiotest(Drv::kDualPar, fsize);
  EXPECT_GT(dualpar, vanilla * 1.5);  // paper: 2.3x
}

TEST(Fig3Shape, CollectiveLosesOnIor) {
  auto run = [&](Drv d) {
    harness::Testbed tb;
    wl::IorConfig c;
    c.file_size = 512ull << 20;
    c.file = tb.create_file("f", c.file_size);
    c.request_size = 32 * 1024;
    c.collective = (d == Drv::kCollective);
    auto& job = tb.add_job("i", 64,
                           d == Drv::kVanilla
                               ? static_cast<mpi::IoDriver&>(tb.vanilla())
                           : d == Drv::kCollective
                               ? static_cast<mpi::IoDriver&>(tb.collective())
                               : static_cast<mpi::IoDriver&>(tb.dualpar()),
                           [c](std::uint32_t) { return wl::make_ior(c); },
                           d == Drv::kDualPar ? dualpar::Policy::kForcedDataDriven
                                              : dualpar::Policy::kForcedNormal);
    tb.run();
    return tb.job_throughput_mbs(job);
  };
  const double vanilla = run(Drv::kVanilla);
  const double coll = run(Drv::kCollective);
  const double dualpar = run(Drv::kDualPar);
  EXPECT_LT(coll, vanilla);            // the striping/domain mismatch (§V-B)
  EXPECT_GT(dualpar, coll * 2);        // DualPar far ahead of collective
  EXPECT_GE(dualpar, vanilla * 0.95);  // and at least on par with vanilla
}

TEST(Fig3Shape, NoncontigOrderingVanillaCollectiveDualPar) {
  auto run = [&](Drv d) {
    harness::Testbed tb;
    wl::NoncontigConfig c;
    c.columns = 64;
    c.elmt_count = 128;
    c.rows = 1024;
    c.collective = (d == Drv::kCollective);
    c.file = tb.create_file("f", c.columns * c.elmt_count * 4 * c.rows);
    auto& job = tb.add_job("n", 64,
                           d == Drv::kVanilla
                               ? static_cast<mpi::IoDriver&>(tb.vanilla())
                           : d == Drv::kCollective
                               ? static_cast<mpi::IoDriver&>(tb.collective())
                               : static_cast<mpi::IoDriver&>(tb.dualpar()),
                           [c](std::uint32_t) { return wl::make_noncontig(c); },
                           d == Drv::kDualPar ? dualpar::Policy::kForcedDataDriven
                                              : dualpar::Policy::kForcedNormal);
    tb.run();
    return tb.job_throughput_mbs(job);
  };
  const double vanilla = run(Drv::kVanilla);
  const double coll = run(Drv::kCollective);
  const double dualpar = run(Drv::kDualPar);
  EXPECT_GT(coll, vanilla * 5);     // collective transforms noncontig
  EXPECT_GT(dualpar, coll);         // and DualPar beats collective (+57% paper)
}

TEST(Fig1Shape, Strategy3LosesAtLowIoRatioWinsAtHigh) {
  // At a low I/O ratio the redundant ghost computation makes DualPar slower
  // than vanilla; at ~100% it is far faster.
  auto runtime = [&](Drv d, sim::Time compute) {
    harness::Testbed tb;
    wl::DemoConfig c;
    c.file_size = 32 << 20;
    c.file = tb.create_file("f", c.file_size);
    c.segment_size = 4096;
    c.compute_per_call = compute;
    auto& job = tb.add_job("d", 8,
                           d == Drv::kVanilla
                               ? static_cast<mpi::IoDriver&>(tb.vanilla())
                               : static_cast<mpi::IoDriver&>(tb.dualpar()),
                           [c](std::uint32_t) { return wl::make_demo(c); },
                           d == Drv::kDualPar ? dualpar::Policy::kForcedDataDriven
                                              : dualpar::Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  // Pure I/O: Strategy 3 wins big.
  EXPECT_LT(runtime(Drv::kDualPar, 0), runtime(Drv::kVanilla, 0));
  // Compute-dominated: Strategy 3's ghost re-runs the compute and loses.
  const sim::Time heavy = sim::msec(200);
  EXPECT_GT(runtime(Drv::kDualPar, heavy), runtime(Drv::kVanilla, heavy));
}

TEST(Table2Shape, InterferenceGapAndSeekReduction) {
  const std::uint64_t fsize = 48 << 20;
  const double vanilla2 = run_mpiiotest(Drv::kVanilla, fsize, 2);
  const double dualpar2 = run_mpiiotest(Drv::kDualPar, fsize, 2);
  EXPECT_GT(dualpar2, vanilla2 * 1.5);  // paper: ~2.7x
}

TEST(Fig8Shape, ThroughputRisesWithQuotaThenSaturates) {
  auto run = [&](std::uint64_t quota) {
    harness::TestbedConfig cfg;
    cfg.dualpar.cache_quota = quota;
    harness::Testbed tb(cfg);
    wl::BtioConfig c;
    c.total_bytes = 8 << 20;
    c.write_steps = 8;
    c.file = tb.create_file("f", c.total_bytes * 2);
    auto& job = tb.add_job("b", 64, tb.dualpar(),
                           [c](std::uint32_t) { return wl::make_btio(c); },
                           dualpar::Policy::kForcedDataDriven);
    tb.run();
    return tb.job_throughput_mbs(job);
  };
  const double q64k = run(64 * 1024);
  const double q1m = run(1 << 20);
  const double q4m = run(4 << 20);
  EXPECT_GT(q1m, q64k);                 // growing quota helps...
  EXPECT_LT(q4m, q1m * 1.6);            // ...with diminishing returns
}

TEST(Fig7Shape, AdaptiveDualParMatchesVanillaWhenAlone) {
  auto runtime = [&](bool dualpar) {
    harness::Testbed tb;
    wl::MpiIoTestConfig c;
    c.file_size = 96 << 20;
    c.file = tb.create_file("f", c.file_size);
    c.request_size = 16 * 1024;
    auto& job = tb.add_job("solo", 64,
                           dualpar ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                   : static_cast<mpi::IoDriver&>(tb.vanilla()),
                           [c](std::uint32_t) { return wl::make_mpi_io_test(c); },
                           dualpar ? dualpar::Policy::kAdaptive
                                   : dualpar::Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  // EMC leaves the lone sequential program computation-driven: identical runs.
  EXPECT_EQ(runtime(true), runtime(false));
}

TEST(Table3Shape, AdversaryOverheadBoundedAndLatched) {
  auto runtime = [&](bool dualpar) {
    harness::Testbed tb;
    wl::DependentConfig c;
    c.file_size = 64 << 20;
    c.file = tb.create_file("f", c.file_size);
    c.requests = 200;
    auto& job = tb.add_job("dep", 8,
                           dualpar ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                   : static_cast<mpi::IoDriver&>(tb.vanilla()),
                           [c](std::uint32_t) { return wl::make_dependent(c); },
                           dualpar ? dualpar::Policy::kForcedDataDriven
                                   : dualpar::Policy::kForcedNormal);
    tb.run();
    if (dualpar) {
      EXPECT_TRUE(tb.emc().latched_off(job.id()));
    }
    return job.completion_time();
  };
  const auto base = runtime(false);
  const auto with = runtime(true);
  // Worst case stays within 10% (paper: 7.2% at the largest cache).
  EXPECT_LT(static_cast<double>(with), static_cast<double>(base) * 1.10);
}

}  // namespace
}  // namespace dpar
