// Unit tests for the discrete-event engine, RNG and stats primitives.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/debug.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dpar::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(msec(30), [&] { order.push_back(3); });
  eng.at(msec(10), [&] { order.push_back(1); });
  eng.at(msec(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), msec(30));
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.at(msec(5), [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, AfterSchedulesRelativeToNow) {
  Engine eng;
  Time fired = -1;
  eng.at(msec(10), [&] {
    eng.after(msec(5), [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, msec(15));
}

TEST(Engine, CancelPreventsFiring) {
  Engine eng;
  bool fired = false;
  EventId id = eng.at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(eng.cancel(id));  // double-cancel reports failure
}

TEST(Engine, CancelOfEmptyIdIsNoop) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(EventId{}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.at(msec(10), [] {});
  eng.run();
  EXPECT_THROW(eng.at(msec(5), [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine eng;
  eng.run_until(secs(2));
  EXPECT_EQ(eng.now(), secs(2));
}

TEST(Engine, RunUntilFiresOnlyDueEvents) {
  Engine eng;
  int fired = 0;
  eng.at(msec(10), [&] { ++fired; });
  eng.at(msec(20), [&] { ++fired; });
  eng.at(msec(30), [&] { ++fired; });
  eng.run_until(msec(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), msec(20));
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.after(usec(1), chain);
  };
  eng.after(usec(1), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), usec(100));
}

TEST(Engine, EmptyReflectsCancelledEvents) {
  Engine eng;
  EventId id = eng.at(msec(1), [] {});
  EXPECT_FALSE(eng.empty());
  eng.cancel(id);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, AfterOverflowThrowsPreciseError) {
  Engine eng;
  eng.at(secs(1), [] {});
  eng.run();  // now() > 0, so max delay must overflow
  EXPECT_THROW(eng.after(std::numeric_limits<Time>::max(), [] {}),
               std::overflow_error);
  // The engine stays usable after the rejected schedule.
  bool fired = false;
  eng.after(msec(1), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelReclaimsSlotAndMemoryImmediately) {
  // Regression: cancelling far-future events must reclaim their bookkeeping
  // promptly — the seed engine grew its cancelled_ set without bound.
  Engine eng;
  for (int i = 0; i < 100'000; ++i) {
    EventId id = eng.at(secs(1'000'000) + i, [] {});
    ASSERT_TRUE(eng.cancel(id));
  }
  // One live slot at a time -> the slab never grows past a single slot...
  EXPECT_EQ(eng.slab_slots(), 1u);
  // ...and heap compaction keeps stale keys bounded (not 100k of them).
  EXPECT_LT(eng.queue_depth(), 256u);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, StaleIdNeverCancelsReusedSlot) {
  Engine eng;
  EventId id1 = eng.at(secs(100), [] {});
  ASSERT_TRUE(eng.cancel(id1));
  // The freed slot is reused by the next event; the old id must not alias it.
  bool fired = false;
  EventId id2 = eng.at(secs(200), [&] { fired = true; });
  EXPECT_EQ(id1.slot, id2.slot);
  EXPECT_FALSE(eng.cancel(id1));
  eng.run();
  EXPECT_TRUE(fired);
  // Both ids are stale now.
  EXPECT_FALSE(eng.cancel(id2));
}

TEST(Engine, FiredEventFreesItsSlotForReuse) {
  Engine eng;
  EventId id1 = eng.at(msec(1), [] {});
  eng.run();
  EventId id2 = eng.at(msec(2), [] {});
  EXPECT_EQ(eng.slab_slots(), 1u);
  EXPECT_EQ(id1.slot, id2.slot);
  EXPECT_NE(id1.gen, id2.gen);
  eng.run();
}

TEST(Engine, LargeCapturesFallBackToHeapCorrectly) {
  Engine eng;
  std::array<std::uint64_t, 16> big{};  // 128 bytes, past the inline buffer
  big.fill(7);
  std::uint64_t sum = 0;
  eng.at(msec(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  eng.run();
  EXPECT_EQ(sum, 16u * 7u);
}

TEST(Engine, CancelHeavyChurnStaysDeterministic) {
  // Interleaved schedule/cancel/fire with slot reuse must preserve the
  // (time, scheduling-order) firing contract.
  Engine eng;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(eng.at(msec(10 + i % 3), [&order, i] { order.push_back(i); }));
  for (int i = 0; i < 100; i += 2) eng.cancel(ids[static_cast<std::size_t>(i)]);
  eng.run();
  ASSERT_EQ(order.size(), 50u);
  // Odd indices only, grouped by time (10+i%3), ascending seq within a group.
  std::vector<int> expect;
  for (int t = 0; t < 3; ++t)
    for (int i = 1; i < 100; i += 2)
      if (i % 3 == t) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(FifoResource, ServesSeriallyInOrder) {
  Engine eng;
  FifoResource res(eng);
  std::vector<std::pair<int, Time>> done;
  res.submit(msec(10), [&] { done.emplace_back(1, eng.now()); });
  res.submit(msec(5), [&] { done.emplace_back(2, eng.now()); });
  res.submit(msec(1), [&] { done.emplace_back(3, eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(1, msec(10)));
  EXPECT_EQ(done[1], std::make_pair(2, msec(15)));
  EXPECT_EQ(done[2], std::make_pair(3, msec(16)));
  EXPECT_EQ(res.busy_time(), msec(16));
}

TEST(FifoResource, AcceptsSubmissionsWhileBusy) {
  Engine eng;
  FifoResource res(eng);
  Time second_done = 0;
  res.submit(msec(10), [&] {
    res.submit(msec(10), [&] { second_done = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(second_done, msec(20));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformBetweenInclusive) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo_seen |= (v == 3);
    hi_seen |= (v == 5);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EwmaConverges) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Stats, SlotSamplerReportsCompletedSlot) {
  SlotSampler s(msec(100));
  s.add(msec(10), 4.0);
  s.add(msec(50), 6.0);
  // Still inside slot 0: last completed slot is empty.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(60)), 0.0);
  // Slot 1: slot 0's mean becomes visible.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(110)), 5.0);
  EXPECT_EQ(s.last_slot_count(msec(110)), 2u);
  // A long silent gap clears the reading.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(450)), 0.0);
}

TEST(Stats, HistogramPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-bucketed: percentiles are bucket upper bounds (powers of two).
  EXPECT_LE(h.percentile(0.5), 1024.0);
  EXPECT_GE(h.percentile(0.5), 256.0);
  EXPECT_GE(h.percentile(0.99), h.percentile(0.5));
  EXPECT_GE(h.percentile(1.0), 512.0);
}

TEST(Stats, HistogramEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.add(0.5);  // below the first bucket boundary
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  h.add(1e30);  // clamped into the last bucket
  EXPECT_GT(h.percentile(1.0), 1e15);
}

TEST(Stats, HistogramBimodalSeparation) {
  // Mimics DualPar's latency shape: many tiny values, few huge ones.
  Histogram h;
  for (int i = 0; i < 990; ++i) h.add(20.0);
  for (int i = 0; i < 10; ++i) h.add(200'000.0);
  EXPECT_LE(h.percentile(0.5), 32.0);
  EXPECT_GE(h.percentile(0.995), 100'000.0);
}

TEST(Rng, ContentHashIsDeterministicAndSpread) {
  EXPECT_EQ(content_hash(1, 100), content_hash(1, 100));
  EXPECT_NE(content_hash(1, 100), content_hash(1, 101));
  EXPECT_NE(content_hash(1, 100), content_hash(2, 100));
}

// ---- Conservative-PDES lane tests ----

TEST(EngineBatch, AtAllFiresInOrderAsOneEvent) {
  Engine eng;
  std::vector<int> order;
  std::vector<Engine::Callback> cbs;
  for (int i = 0; i < 4; ++i) cbs.emplace_back([&order, i] { order.push_back(i); });
  const EventId id = eng.after_all(msec(1), std::move(cbs));
  EXPECT_TRUE(static_cast<bool>(id));
  // Scheduled after the batch at the same instant: must fire after all of it.
  eng.at(msec(1), [&order] { order.push_back(99); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 99}));
  EXPECT_EQ(eng.events_fired(), 2u);  // the whole batch was one heap entry
}

TEST(EngineBatch, EmptyBatchIsNoEventAndCancellable) {
  Engine eng;
  EXPECT_FALSE(static_cast<bool>(eng.at_all(msec(1), {})));
  std::vector<Engine::Callback> cbs;
  cbs.emplace_back([] { FAIL() << "cancelled batch fired"; });
  cbs.emplace_back([] { FAIL() << "cancelled batch fired"; });
  const EventId id = eng.after_all(msec(1), std::move(cbs));
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_EQ(eng.events_fired(), 0u);
}

TEST(EnginePdes, UnpartitionedIgnoresWorkerCount) {
  Engine eng;
  eng.set_pdes_workers(8);
  EXPECT_FALSE(eng.partitioned());
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) eng.at(msec(i), [&order, i] { order.push_back(i); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EnginePdes, PartitionedRunNeedsLookahead) {
  Engine eng;
  eng.add_lane();
  EXPECT_TRUE(eng.partitioned());
  eng.at(usec(1), [] {});
  EXPECT_THROW(eng.run(), std::logic_error);
  eng.set_lookahead(usec(50));
  EXPECT_NO_THROW(eng.run());
}

TEST(EnginePdes, StepRejectsPartitionedEngines) {
  Engine eng;
  eng.add_lane();
  EXPECT_THROW(eng.step(), std::logic_error);
}

TEST(EnginePdes, RunUntilPausesEveryLaneAtTheCut) {
  Engine eng;
  const LaneId a = eng.add_lane();
  const LaneId b = eng.add_lane();
  eng.set_lookahead(usec(50));
  eng.set_pdes_workers(2);
  std::vector<int> fired;
  eng.at_in(a, usec(10), [&] { fired.push_back(10); });
  eng.at_in(b, usec(20), [&] { fired.push_back(20); });
  eng.at_in(a, msec(1), [&] { fired.push_back(1000); });  // exactly the cut
  eng.at_in(b, msec(2), [&] { fired.push_back(2000); });  // past the cut
  eng.run_until(msec(1));
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 1000}));
  EXPECT_EQ(eng.now(), msec(1));
  EXPECT_EQ(eng.live_events(), 1u);
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 1000, 2000}));
}

TEST(EnginePdes, CrossLanePostsDeliverAtTheirTimestamp) {
  Engine eng;
  const LaneId a = eng.add_lane();
  const LaneId b = eng.add_lane();
  eng.set_lookahead(usec(50));
  eng.set_pdes_workers(1);
  std::vector<Time> b_times;
  eng.at_in(a, usec(10), [&] {
    // Cross-lane from inside a's window: must land >= one lookahead out.
    eng.after_in(b, usec(50) + usec(3), [&] { b_times.push_back(eng.now()); });
    eng.after_in(b, usec(50) + usec(1), [&] { b_times.push_back(eng.now()); });
  });
  eng.run();
  EXPECT_EQ(b_times, (std::vector<Time>{usec(61), usec(63)}));
  EXPECT_EQ(eng.events_fired(), 3u);
}

TEST(EnginePdes, ExclusiveEventSeesEveryLaneQuiescent) {
  Engine eng;
  const LaneId a = eng.add_lane();
  const LaneId b = eng.add_lane();
  eng.add_exclusive_lane();
  eng.set_lookahead(usec(50));
  eng.set_pdes_workers(2);
  // Both lanes count up in small steps; the exclusive probe at t reads both
  // counters and must see exactly the events with time < t.
  auto counts = std::make_shared<std::array<int, 2>>();
  std::function<void(LaneId, int)> ticker = [&](LaneId lane, int left) {
    if (left == 0) return;
    eng.after_in(lane, usec(7), [&, lane, left] {
      ++(*counts)[lane == a ? 0 : 1];
      ticker(lane, left - 1);
    });
  };
  ticker(a, 40);  // fires at 7, 14, ..., 280 us
  ticker(b, 40);
  std::vector<std::array<int, 2>> probes;
  for (int i = 1; i <= 3; ++i) {
    eng.at_in(eng.exclusive_lane(), usec(100) * i, [&] {
      probes.push_back(*counts);
    });
  }
  eng.run();
  // floor(100/7) = 14 events strictly before each probe per lane.
  ASSERT_EQ(probes.size(), 3u);
  EXPECT_EQ(probes[0], (std::array<int, 2>{14, 14}));
  EXPECT_EQ(probes[1], (std::array<int, 2>{28, 28}));
  EXPECT_EQ(probes[2], (std::array<int, 2>{40, 40}));
}

/// One randomized cross-lane workload, executed at a given worker count.
/// Every event logs (time, tag) into its lane's private log; an exclusive
/// probe logs the total log size it observes. Returns the per-lane logs
/// concatenated in lane order — the full deterministic execution order.
std::vector<std::array<std::int64_t, 3>> pdes_scenario(unsigned workers,
                                                       std::uint64_t seed) {
  Engine eng;
  constexpr std::uint32_t kLanes = 5;
  std::vector<LaneId> lanes;
  for (std::uint32_t i = 0; i < kLanes; ++i) lanes.push_back(eng.add_lane());
  const LaneId excl = eng.add_exclusive_lane();
  eng.set_lookahead(usec(50));
  eng.set_pdes_workers(workers);

  const std::uint32_t slots = eng.num_lanes();
  std::vector<std::vector<std::array<std::int64_t, 3>>> logs(slots);
  // One RNG per lane: only the lane's own events draw from it, so the
  // stream is identical at any worker count.
  std::vector<Rng> rngs;
  for (std::uint32_t i = 0; i < slots; ++i) rngs.emplace_back(splitmix64(seed + i));

  // Each event logs itself, then schedules local follow-ups and (sometimes)
  // a cross-lane hop at least one lookahead out.
  std::function<void(LaneId, int, int)> chain = [&](LaneId lane, int budget, int tag) {
    logs[lane].push_back({eng.now(), lane, tag});
    if (budget <= 0) return;
    Rng& rng = rngs[lane];
    eng.after(usec(1 + rng.uniform(30)),
              [&chain, lane, budget, tag] { chain(lane, budget - 1, tag + 1); });
    if (rng.chance(0.4)) {
      const LaneId to = lanes[rng.uniform(kLanes)];
      eng.after_in(to, usec(50) + usec(rng.uniform(20)),
                   [&chain, to, budget, tag] { chain(to, budget / 2, tag + 1000); });
    }
  };
  for (std::uint32_t i = 0; i < kLanes; ++i) {
    const LaneId lane = lanes[i];
    eng.at_in(lane, usec(i), [&chain, lane] { chain(lane, 24, 0); });
  }
  // The exclusive probe reads every lane's log — cross-lane state — which is
  // only legal because all lanes are quiescent when it runs.
  std::function<void(int)> probe = [&](int left) {
    std::int64_t total = 0;
    for (const auto& l : logs) total += static_cast<std::int64_t>(l.size());
    logs[excl].push_back({eng.now(), excl, total});
    if (left > 0) eng.after_in(excl, usec(100), [&probe, left] { probe(left - 1); });
  };
  eng.at_in(excl, usec(100), [&probe] { probe(8); });
  eng.run();

  std::vector<std::array<std::int64_t, 3>> flat;
  for (const auto& l : logs) flat.insert(flat.end(), l.begin(), l.end());
  return flat;
}

TEST(EnginePdes, RandomizedCrossLaneOrderIsIdenticalAt1v2v8Workers) {
  for (std::uint64_t seed : {0x5eedull, 0xfeedull, 0xabcdull}) {
    const auto w1 = pdes_scenario(1, seed);
    const auto w2 = pdes_scenario(2, seed);
    const auto w8 = pdes_scenario(8, seed);
    ASSERT_GT(w1.size(), 100u) << "scenario too small to mean anything";
    EXPECT_EQ(w1, w2) << "seed " << seed;
    EXPECT_EQ(w1, w8) << "seed " << seed;
  }
}

#if DPAR_CHECK_INVARIANTS
TEST(EnginePdesDeath, OutOfLookaheadCrossLanePostTripsAssert) {
  EXPECT_DEATH(
      {
        Engine eng;
        const LaneId a = eng.add_lane();
        const LaneId b = eng.add_lane();
        eng.set_lookahead(usec(50));
        eng.set_pdes_workers(1);
        eng.at_in(a, usec(1), [&eng, b] {
          // Inside a's window: a cross-lane post closer than the lookahead
          // violates the conservative protocol.
          eng.at_in(b, eng.now() + usec(1), [] {});
        });
        eng.run();
      },
      "cross-lane event inside the lookahead window");
}
#else
TEST(EnginePdesDeath, OutOfLookaheadCrossLanePostThrowsReleaseBackstop) {
  // Without the invariant layer the outbox still refuses to deliver an event
  // behind the target lane's clock at the window barrier.
  Engine eng;
  const LaneId a = eng.add_lane();
  const LaneId b = eng.add_lane();
  eng.set_lookahead(usec(50));
  eng.set_pdes_workers(1);
  eng.at_in(b, usec(20), [] {});  // advances b's clock past the bad post
  eng.at_in(a, usec(1), [&eng, b] { eng.at_in(b, usec(2), [] {}); });
  EXPECT_THROW(eng.run(), std::logic_error);
}
#endif  // DPAR_CHECK_INVARIANTS

}  // namespace
}  // namespace dpar::sim
