// Unit tests for the discrete-event engine, RNG and stats primitives.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dpar::sim {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(msec(30), [&] { order.push_back(3); });
  eng.at(msec(10), [&] { order.push_back(1); });
  eng.at(msec(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), msec(30));
}

TEST(Engine, TiesBreakInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.at(msec(5), [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, AfterSchedulesRelativeToNow) {
  Engine eng;
  Time fired = -1;
  eng.at(msec(10), [&] {
    eng.after(msec(5), [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, msec(15));
}

TEST(Engine, CancelPreventsFiring) {
  Engine eng;
  bool fired = false;
  EventId id = eng.at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(eng.cancel(id));  // double-cancel reports failure
}

TEST(Engine, CancelOfEmptyIdIsNoop) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(EventId{}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.at(msec(10), [] {});
  eng.run();
  EXPECT_THROW(eng.at(msec(5), [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine eng;
  eng.run_until(secs(2));
  EXPECT_EQ(eng.now(), secs(2));
}

TEST(Engine, RunUntilFiresOnlyDueEvents) {
  Engine eng;
  int fired = 0;
  eng.at(msec(10), [&] { ++fired; });
  eng.at(msec(20), [&] { ++fired; });
  eng.at(msec(30), [&] { ++fired; });
  eng.run_until(msec(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), msec(20));
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.after(usec(1), chain);
  };
  eng.after(usec(1), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), usec(100));
}

TEST(Engine, EmptyReflectsCancelledEvents) {
  Engine eng;
  EventId id = eng.at(msec(1), [] {});
  EXPECT_FALSE(eng.empty());
  eng.cancel(id);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, AfterOverflowThrowsPreciseError) {
  Engine eng;
  eng.at(secs(1), [] {});
  eng.run();  // now() > 0, so max delay must overflow
  EXPECT_THROW(eng.after(std::numeric_limits<Time>::max(), [] {}),
               std::overflow_error);
  // The engine stays usable after the rejected schedule.
  bool fired = false;
  eng.after(msec(1), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelReclaimsSlotAndMemoryImmediately) {
  // Regression: cancelling far-future events must reclaim their bookkeeping
  // promptly — the seed engine grew its cancelled_ set without bound.
  Engine eng;
  for (int i = 0; i < 100'000; ++i) {
    EventId id = eng.at(secs(1'000'000) + i, [] {});
    ASSERT_TRUE(eng.cancel(id));
  }
  // One live slot at a time -> the slab never grows past a single slot...
  EXPECT_EQ(eng.slab_slots(), 1u);
  // ...and heap compaction keeps stale keys bounded (not 100k of them).
  EXPECT_LT(eng.queue_depth(), 256u);
  EXPECT_TRUE(eng.empty());
}

TEST(Engine, StaleIdNeverCancelsReusedSlot) {
  Engine eng;
  EventId id1 = eng.at(secs(100), [] {});
  ASSERT_TRUE(eng.cancel(id1));
  // The freed slot is reused by the next event; the old id must not alias it.
  bool fired = false;
  EventId id2 = eng.at(secs(200), [&] { fired = true; });
  EXPECT_EQ(id1.slot, id2.slot);
  EXPECT_FALSE(eng.cancel(id1));
  eng.run();
  EXPECT_TRUE(fired);
  // Both ids are stale now.
  EXPECT_FALSE(eng.cancel(id2));
}

TEST(Engine, FiredEventFreesItsSlotForReuse) {
  Engine eng;
  EventId id1 = eng.at(msec(1), [] {});
  eng.run();
  EventId id2 = eng.at(msec(2), [] {});
  EXPECT_EQ(eng.slab_slots(), 1u);
  EXPECT_EQ(id1.slot, id2.slot);
  EXPECT_NE(id1.gen, id2.gen);
  eng.run();
}

TEST(Engine, LargeCapturesFallBackToHeapCorrectly) {
  Engine eng;
  std::array<std::uint64_t, 16> big{};  // 128 bytes, past the inline buffer
  big.fill(7);
  std::uint64_t sum = 0;
  eng.at(msec(1), [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  eng.run();
  EXPECT_EQ(sum, 16u * 7u);
}

TEST(Engine, CancelHeavyChurnStaysDeterministic) {
  // Interleaved schedule/cancel/fire with slot reuse must preserve the
  // (time, scheduling-order) firing contract.
  Engine eng;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(eng.at(msec(10 + i % 3), [&order, i] { order.push_back(i); }));
  for (int i = 0; i < 100; i += 2) eng.cancel(ids[static_cast<std::size_t>(i)]);
  eng.run();
  ASSERT_EQ(order.size(), 50u);
  // Odd indices only, grouped by time (10+i%3), ascending seq within a group.
  std::vector<int> expect;
  for (int t = 0; t < 3; ++t)
    for (int i = 1; i < 100; i += 2)
      if (i % 3 == t) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(FifoResource, ServesSeriallyInOrder) {
  Engine eng;
  FifoResource res(eng);
  std::vector<std::pair<int, Time>> done;
  res.submit(msec(10), [&] { done.emplace_back(1, eng.now()); });
  res.submit(msec(5), [&] { done.emplace_back(2, eng.now()); });
  res.submit(msec(1), [&] { done.emplace_back(3, eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(1, msec(10)));
  EXPECT_EQ(done[1], std::make_pair(2, msec(15)));
  EXPECT_EQ(done[2], std::make_pair(3, msec(16)));
  EXPECT_EQ(res.busy_time(), msec(16));
}

TEST(FifoResource, AcceptsSubmissionsWhileBusy) {
  Engine eng;
  FifoResource res(eng);
  Time second_done = 0;
  res.submit(msec(10), [&] {
    res.submit(msec(10), [&] { second_done = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(second_done, msec(20));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformBetweenInclusive) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo_seen |= (v == 3);
    hi_seen |= (v == 5);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EwmaConverges) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(Stats, SlotSamplerReportsCompletedSlot) {
  SlotSampler s(msec(100));
  s.add(msec(10), 4.0);
  s.add(msec(50), 6.0);
  // Still inside slot 0: last completed slot is empty.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(60)), 0.0);
  // Slot 1: slot 0's mean becomes visible.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(110)), 5.0);
  EXPECT_EQ(s.last_slot_count(msec(110)), 2u);
  // A long silent gap clears the reading.
  EXPECT_DOUBLE_EQ(s.last_slot_mean(msec(450)), 0.0);
}

TEST(Stats, HistogramPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-bucketed: percentiles are bucket upper bounds (powers of two).
  EXPECT_LE(h.percentile(0.5), 1024.0);
  EXPECT_GE(h.percentile(0.5), 256.0);
  EXPECT_GE(h.percentile(0.99), h.percentile(0.5));
  EXPECT_GE(h.percentile(1.0), 512.0);
}

TEST(Stats, HistogramEdgeCases) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.add(0.5);  // below the first bucket boundary
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  h.add(1e30);  // clamped into the last bucket
  EXPECT_GT(h.percentile(1.0), 1e15);
}

TEST(Stats, HistogramBimodalSeparation) {
  // Mimics DualPar's latency shape: many tiny values, few huge ones.
  Histogram h;
  for (int i = 0; i < 990; ++i) h.add(20.0);
  for (int i = 0; i < 10; ++i) h.add(200'000.0);
  EXPECT_LE(h.percentile(0.5), 32.0);
  EXPECT_GE(h.percentile(0.995), 100'000.0);
}

TEST(Rng, ContentHashIsDeterministicAndSpread) {
  EXPECT_EQ(content_hash(1, 100), content_hash(1, 100));
  EXPECT_NE(content_hash(1, 100), content_hash(1, 101));
  EXPECT_NE(content_hash(1, 100), content_hash(2, 100));
}

}  // namespace
}  // namespace dpar::sim
