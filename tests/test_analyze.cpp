// Tests for the offline workload analyzer.
#include <gtest/gtest.h>

#include "wl/analyze.hpp"
#include "wl/workloads.hpp"

namespace dpar::wl {
namespace {

TEST(Analyze, IorIsFullySequential) {
  IorConfig c;
  c.file_size = 64 << 20;
  auto prog = make_ior(c);
  const AccessPattern p = analyze(*prog, 2, 8);
  EXPECT_DOUBLE_EQ(p.sequentiality(), 1.0);
  EXPECT_EQ(p.read_bytes, (64u << 20) / 8);
  EXPECT_EQ(p.write_bytes, 0u);
  EXPECT_EQ(p.min_segment, 32u * 1024);
  EXPECT_EQ(p.max_segment, 32u * 1024);
}

TEST(Analyze, DemoIsStridedNotSequential) {
  DemoConfig c;
  c.file_size = 16 << 20;
  c.segment_size = 4096;
  auto prog = make_demo(c);
  const AccessPattern p = analyze(*prog, 1, 8);
  EXPECT_DOUBLE_EQ(p.sequentiality(), 0.0);
  // Stride between a rank's consecutive segments: nprocs * segment size,
  // minus the segment already consumed by last_end.
  EXPECT_EQ(p.dominant_stride, 7u * 4096);
  EXPECT_EQ(p.read_bytes, (16u << 20) / 8);
}

TEST(Analyze, BtioMixesBarriersAndWrites) {
  BtioConfig c;
  c.total_bytes = 4 << 20;
  c.write_steps = 4;
  c.read_back = true;
  auto prog = make_btio(c);
  const AccessPattern p = analyze(*prog, 0, 16);
  EXPECT_GT(p.write_bytes, 0u);
  EXPECT_EQ(p.write_bytes, p.read_bytes);  // read-back re-reads everything
  EXPECT_GT(p.barriers, 0u);
  EXPECT_EQ(p.min_segment, 10240u / 16);
}

TEST(Analyze, MasterWorkerCountsMessages) {
  MasterWorkerConfig c;
  c.database_size = 8 << 20;
  c.queries = 6;
  c.fragments = 2;
  c.max_size = 10'000;
  auto master = make_master_worker(c);
  const AccessPattern pm = analyze(*master, 0, 4);
  EXPECT_EQ(pm.sends, 6u);
  EXPECT_EQ(pm.recvs, 6u);
  EXPECT_GT(pm.write_bytes, 0u);
  EXPECT_EQ(pm.read_bytes, 0u);
  auto worker = make_master_worker(c);
  const AccessPattern pw = analyze(*worker, 1, 4);
  EXPECT_EQ(pw.sends, pw.recvs);
  EXPECT_GT(pw.read_bytes, 0u);
  EXPECT_EQ(pw.write_bytes, 0u);
}

TEST(Analyze, EmptyProgramIsAllZeros) {
  DemoConfig c;
  c.file_size = 0;
  auto prog = make_demo(c);
  const AccessPattern p = analyze(*prog, 0, 4);
  EXPECT_EQ(p.calls, 0u);
  EXPECT_EQ(p.segments, 0u);
  EXPECT_EQ(p.min_segment, 0u);
  EXPECT_DOUBLE_EQ(p.mean_segment(), 0.0);
  EXPECT_DOUBLE_EQ(p.sequentiality(), 0.0);
}

TEST(Analyze, DescribeMentionsTheNumbers) {
  DemoConfig c;
  c.file_size = 1 << 20;
  c.segment_size = 4096;
  auto prog = make_demo(c);
  const std::string text = describe(analyze(*prog, 0, 8));
  EXPECT_NE(text.find("segments"), std::string::npos);
  EXPECT_NE(text.find("sequentiality"), std::string::npos);
}

}  // namespace
}  // namespace dpar::wl
