// Tests for the MPI runtime: process op execution, barriers, timing probes,
// program cloning.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/testbed.hpp"
#include "mpi/job.hpp"
#include "mpi/program.hpp"
#include "wl/workloads.hpp"

namespace dpar::mpi {
namespace {

/// Scripted program for tests: fixed list of ops.
class ScriptProgram final : public Program {
 public:
  explicit ScriptProgram(std::vector<Op> ops) : ops_(std::move(ops)) {}
  Op next(ProgramContext&) override {
    if (pos_ >= ops_.size()) return OpEnd{};
    return ops_[pos_++];
  }
  std::unique_ptr<Program> clone() const override {
    auto p = std::make_unique<ScriptProgram>(ops_);
    p->pos_ = pos_;
    return p;
  }

 private:
  std::vector<Op> ops_;
  std::size_t pos_ = 0;
};

Op read_op(pfs::FileId f, std::uint64_t off, std::uint64_t len) {
  IoCall c;
  c.file = f;
  c.segments.push_back(pfs::Segment{off, len});
  return OpIo{std::move(c)};
}

harness::TestbedConfig small_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 4;
  return cfg;
}

TEST(MpiJob, RunsComputeAndIoToCompletion) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 8 << 20);
  auto& job = tb.add_job("t", 2, tb.vanilla(), [&](std::uint32_t) {
    std::vector<Op> ops;
    ops.push_back(OpCompute{sim::msec(5)});
    ops.push_back(read_op(f, 0, 64 * 1024));
    ops.push_back(OpCompute{sim::msec(5)});
    ops.push_back(read_op(f, 64 * 1024, 64 * 1024));
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.process(0).bytes_read(), 128u * 1024);
  EXPECT_EQ(job.process(0).compute_time(), sim::msec(10));
  EXPECT_GT(job.process(0).io_time(), 0);
  EXPECT_GT(job.completion_time(), sim::msec(10));
}

TEST(MpiJob, BarrierSynchronizesRanks) {
  harness::Testbed tb(small_config());
  auto& job = tb.add_job("t", 4, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    // Rank r computes r*10 ms, then barrier, then 1 ms.
    ops.push_back(OpCompute{sim::msec(10) * rank});
    ops.push_back(OpBarrier{});
    ops.push_back(OpCompute{sim::msec(1)});
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  // Everyone leaves the barrier only after the slowest rank (30 ms).
  for (std::uint32_t r = 0; r < 4; ++r)
    EXPECT_GE(job.process(r).finish_time(), sim::msec(31));
  // And not much later than that.
  EXPECT_LT(job.process(0).finish_time(), sim::msec(33));
}

TEST(MpiJob, IoRatioProbesSeparateComputeFromIo) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 64 << 20);
  auto& job = tb.add_job("t", 1, tb.vanilla(), [&](std::uint32_t) {
    std::vector<Op> ops;
    for (int i = 0; i < 20; ++i) {
      ops.push_back(OpCompute{sim::usec(100)});
      ops.push_back(read_op(f, static_cast<std::uint64_t>(i) * 256 * 1024, 16 * 1024));
    }
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_EQ(job.total_compute_time(), sim::msec(2));
  EXPECT_GT(job.total_io_time(), job.total_compute_time());
}

TEST(MpiJob, ProcessesBlockDistributedOverNodes) {
  harness::Testbed tb(small_config());  // 2 compute nodes
  auto& job = tb.add_job("t", 4, tb.vanilla(), [&](std::uint32_t) {
    return std::make_unique<ScriptProgram>(std::vector<Op>{OpCompute{sim::msec(1)}});
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  // Block placement: consecutive ranks co-located, halves on distinct nodes.
  EXPECT_EQ(job.process(0).node().id(), job.process(1).node().id());
  EXPECT_EQ(job.process(2).node().id(), job.process(3).node().id());
  EXPECT_NE(job.process(0).node().id(), job.process(2).node().id());
}

TEST(MpiJob, CloneProgramResumesFromCurrentPosition) {
  ProgramContext ctx;
  std::vector<Op> ops;
  ops.push_back(OpCompute{sim::msec(1)});
  ops.push_back(OpCompute{sim::msec(2)});
  ops.push_back(OpCompute{sim::msec(3)});
  ScriptProgram prog(ops);
  (void)prog.next(ctx);  // consume first
  auto clone = prog.clone();
  const Op op = clone->next(ctx);
  ASSERT_TRUE(std::holds_alternative<OpCompute>(op));
  EXPECT_EQ(std::get<OpCompute>(op).duration, sim::msec(2));
  // The original is unaffected by the clone's progress.
  const Op op2 = prog.next(ctx);
  EXPECT_EQ(std::get<OpCompute>(op2).duration, sim::msec(2));
}

TEST(MpiJob, StaggeredStartTimes) {
  harness::Testbed tb(small_config());
  auto& j1 = tb.add_job("early", 1, tb.vanilla(), [&](std::uint32_t) {
    return std::make_unique<ScriptProgram>(std::vector<Op>{OpCompute{sim::msec(1)}});
  }, dualpar::Policy::kForcedNormal, sim::msec(0));
  auto& j2 = tb.add_job("late", 1, tb.vanilla(), [&](std::uint32_t) {
    return std::make_unique<ScriptProgram>(std::vector<Op>{OpCompute{sim::msec(1)}});
  }, dualpar::Policy::kForcedNormal, sim::secs(2));
  tb.run();
  EXPECT_EQ(j1.start_time(), 0);
  EXPECT_EQ(j2.start_time(), sim::secs(2));
  EXPECT_GE(j2.completion_time(), sim::secs(2));
}

TEST(MpiJob, RecentIoBandwidthReflectsTransfers) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 64 << 20);
  auto& job = tb.add_job("t", 1, tb.vanilla(), [&](std::uint32_t) {
    std::vector<Op> ops;
    for (int i = 0; i < 8; ++i)
      ops.push_back(read_op(f, static_cast<std::uint64_t>(i) * (1 << 20), 1 << 20));
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  // 8 MB read; bandwidth should be positive and below the wire limit.
  const double bw = job.process(0).recent_io_bandwidth();
  EXPECT_GT(bw, 1e6);
  EXPECT_LT(bw, 130e6);
}

}  // namespace
}  // namespace dpar::mpi
