// Tests for the range set and the memcached-style global cache.
#include <gtest/gtest.h>

#include <vector>

#include "cache/global_cache.hpp"
#include "cache/rangeset.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace dpar::cache {
namespace {

using pfs::Segment;
using sim::Engine;

TEST(RangeSet, AddAndCovers) {
  RangeSet rs;
  rs.add(10, 20);
  EXPECT_TRUE(rs.covers(10, 20));
  EXPECT_TRUE(rs.covers(12, 15));
  EXPECT_FALSE(rs.covers(5, 15));
  EXPECT_FALSE(rs.covers(15, 25));
  EXPECT_TRUE(rs.covers(5, 5));  // empty range trivially covered
}

TEST(RangeSet, MergesOverlappingAndAdjacent) {
  RangeSet rs;
  rs.add(10, 20);
  rs.add(20, 30);  // adjacent
  rs.add(5, 12);   // overlapping
  EXPECT_EQ(rs.ranges().size(), 1u);
  EXPECT_TRUE(rs.covers(5, 30));
  EXPECT_EQ(rs.total_bytes(), 25u);
}

TEST(RangeSet, DisjointRangesStaySeparate) {
  RangeSet rs;
  rs.add(0, 10);
  rs.add(20, 30);
  EXPECT_EQ(rs.ranges().size(), 2u);
  EXPECT_FALSE(rs.covers(0, 30));
  EXPECT_TRUE(rs.intersects(5, 25));
  EXPECT_FALSE(rs.intersects(12, 18));
}

TEST(RangeSet, RemoveSplits) {
  RangeSet rs;
  rs.add(0, 100);
  rs.remove(40, 60);
  EXPECT_TRUE(rs.covers(0, 40));
  EXPECT_TRUE(rs.covers(60, 100));
  EXPECT_FALSE(rs.intersects(40, 60));
  EXPECT_EQ(rs.total_bytes(), 80u);
}

TEST(RangeSet, RemoveAcrossMultipleRanges) {
  RangeSet rs;
  rs.add(0, 10);
  rs.add(20, 30);
  rs.add(40, 50);
  rs.remove(5, 45);
  EXPECT_EQ(rs.ranges(), (std::vector<ByteRange>{{0, 5}, {45, 50}}));
}

TEST(RangeSet, GapsWithin) {
  RangeSet rs;
  rs.add(10, 20);
  rs.add(30, 40);
  const auto gaps = rs.gaps_within(0, 50);
  EXPECT_EQ(gaps, (std::vector<ByteRange>{{0, 10}, {20, 30}, {40, 50}}));
  EXPECT_TRUE(rs.gaps_within(12, 18).empty());
  EXPECT_EQ(rs.gaps_within(15, 35), (std::vector<ByteRange>{{20, 30}}));
}

TEST(RangeSet, PropertyAddRemoveConsistency) {
  // Random adds/removes cross-checked against a bitmap model.
  sim::Rng rng(77);
  RangeSet rs;
  std::vector<bool> model(1000, false);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t b = rng.uniform(1000);
    const std::uint64_t e = b + rng.uniform(100);
    const bool remove = rng.chance(0.3);
    if (remove) {
      rs.remove(b, std::min<std::uint64_t>(e, 1000));
      for (std::uint64_t j = b; j < std::min<std::uint64_t>(e, 1000); ++j) model[j] = false;
    } else {
      rs.add(b, std::min<std::uint64_t>(e, 1000));
      for (std::uint64_t j = b; j < std::min<std::uint64_t>(e, 1000); ++j) model[j] = true;
    }
  }
  std::uint64_t model_bytes = 0;
  for (bool b : model) model_bytes += b;
  EXPECT_EQ(rs.total_bytes(), model_bytes);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t b = rng.uniform(990);
    const std::uint64_t e = b + 1 + rng.uniform(9);
    bool covered = true;
    for (std::uint64_t j = b; j < e; ++j) covered &= model[j];
    EXPECT_EQ(rs.covers(b, e), covered) << "[" << b << "," << e << ")";
  }
}

struct CacheFixture : ::testing::Test {
  Engine eng;
  net::Network net{eng, 4};
  GlobalCache cache{eng, net, {0, 1, 2}, CacheParams{64 * 1024, sim::secs(30)}};
};

TEST_F(CacheFixture, InsertThenCovers) {
  cache.insert(1, Segment{0, 128 * 1024}, /*owner=*/5, /*prefetched=*/true);
  EXPECT_TRUE(cache.covers(1, Segment{0, 128 * 1024}));
  EXPECT_TRUE(cache.covers(1, Segment{64 * 1024, 1024}));
  EXPECT_FALSE(cache.covers(1, Segment{128 * 1024, 1}));
  EXPECT_FALSE(cache.covers(2, Segment{0, 1024}));
  EXPECT_EQ(cache.chunk_count(), 2u);
}

TEST_F(CacheFixture, MissingComputesHoles) {
  cache.insert(1, Segment{0, 64 * 1024}, 5, false);
  cache.insert(1, Segment{128 * 1024, 64 * 1024}, 5, false);
  const auto miss = cache.missing(1, Segment{0, 256 * 1024});
  ASSERT_EQ(miss.size(), 2u);
  EXPECT_EQ(miss[0], (Segment{64 * 1024, 64 * 1024}));
  EXPECT_EQ(miss[1], (Segment{192 * 1024, 64 * 1024}));
}

TEST_F(CacheFixture, PartialChunkValidity) {
  cache.insert(1, Segment{100, 200}, 5, false);
  EXPECT_TRUE(cache.covers(1, Segment{100, 200}));
  EXPECT_FALSE(cache.covers(1, Segment{0, 100}));
  const auto miss = cache.missing(1, Segment{0, 400});
  ASSERT_EQ(miss.size(), 2u);
  EXPECT_EQ(miss[0], (Segment{0, 100}));
  EXPECT_EQ(miss[1], (Segment{300, 100}));
}

TEST_F(CacheFixture, WriteMarksDirtyAndReadYourWrites) {
  cache.write(1, Segment{1000, 5000}, 5);
  EXPECT_TRUE(cache.covers(1, Segment{1000, 5000}));
  const auto dirty = cache.dirty_segments(1);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], (Segment{1000, 5000}));
}

TEST_F(CacheFixture, DirtySegmentsMergeAcrossChunks) {
  cache.write(1, Segment{0, 64 * 1024}, 5);
  cache.write(1, Segment{64 * 1024, 64 * 1024}, 5);
  const auto dirty = cache.dirty_segments(1);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], (Segment{0, 128 * 1024}));
}

TEST_F(CacheFixture, ClearDirtyAfterWriteback) {
  cache.write(1, Segment{0, 32 * 1024}, 5);
  cache.clear_dirty(1, Segment{0, 32 * 1024});
  EXPECT_TRUE(cache.dirty_segments(1).empty());
  EXPECT_TRUE(cache.covers(1, Segment{0, 32 * 1024}));  // stays valid
}

TEST_F(CacheFixture, AllDirtySegmentsSpansFiles) {
  cache.write(2, Segment{0, 1024}, 5);
  cache.write(1, Segment{0, 1024}, 5);
  const auto all = cache.all_dirty_segments();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, 1u);
  EXPECT_EQ(all[1].first, 2u);
}

TEST_F(CacheFixture, OwnerQuotaAccounting) {
  cache.insert(1, Segment{0, 128 * 1024}, 5, true);
  cache.insert(1, Segment{128 * 1024, 64 * 1024}, 6, true);
  EXPECT_EQ(cache.owner_bytes(5), 128u * 1024);
  EXPECT_EQ(cache.owner_bytes(6), 64u * 1024);
}

TEST_F(CacheFixture, ReferenceClearsPrefetchedAndCounts) {
  cache.insert(1, Segment{0, 64 * 1024}, 5, true);
  EXPECT_EQ(cache.reference(1, Segment{0, 1024}), 64u * 1024);
  // Second reference is no longer "newly used".
  EXPECT_EQ(cache.reference(1, Segment{0, 1024}), 0u);
}

TEST_F(CacheFixture, UnusedPrefetchedBytes) {
  cache.insert(1, Segment{0, 64 * 1024}, 5, true);
  cache.insert(1, Segment{64 * 1024, 64 * 1024}, 5, true);
  cache.reference(1, Segment{0, 1024});
  const std::vector<ChunkKey> keys = {{1, 0}, {1, 1}};
  EXPECT_EQ(cache.unused_prefetched_bytes(keys), 64u * 1024);
}

TEST_F(CacheFixture, IdleEvictionSparesDirty) {
  cache.insert(1, Segment{0, 64 * 1024}, 5, false);
  cache.write(1, Segment{64 * 1024, 64 * 1024}, 5);
  eng.run_until(sim::secs(40));
  const auto evicted = cache.evict_idle(eng.now());
  EXPECT_EQ(evicted, 64u * 1024);
  EXPECT_FALSE(cache.covers(1, Segment{0, 1}));
  EXPECT_TRUE(cache.covers(1, Segment{64 * 1024, 1}));
}

TEST_F(CacheFixture, DropCleanKeepsDirty) {
  cache.insert(1, Segment{0, 64 * 1024}, 5, true);
  cache.write(1, Segment{64 * 1024, 1024}, 5);
  cache.drop_clean(5);
  EXPECT_FALSE(cache.covers(1, Segment{0, 1}));
  EXPECT_TRUE(cache.covers(1, Segment{64 * 1024, 1024}));
}

TEST_F(CacheFixture, TransferGetPaysRoundTrip) {
  sim::Time done_at = -1;
  // from node 3, chunk 0 of file 1 homes on node 0.
  cache.transfer(1, Segment{0, 64 * 1024}, 3, /*to_cache=*/false,
                 [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_GT(done_at, sim::usec(100));  // request + payload reply
  EXPECT_GE(net.messages_sent(), 2u);
}

TEST_F(CacheFixture, TransferSpreadsOverHomes) {
  // 3 chunks -> homes 0,1,2: three puts in parallel.
  cache.transfer(1, Segment{0, 192 * 1024}, 3, /*to_cache=*/true, [] {});
  eng.run();
  EXPECT_EQ(net.messages_sent(), 3u);
}

TEST_F(CacheFixture, HomeNodeRoundRobin) {
  EXPECT_EQ(cache.home_node(ChunkKey{9, 0}), 0u);
  EXPECT_EQ(cache.home_node(ChunkKey{9, 1}), 1u);
  EXPECT_EQ(cache.home_node(ChunkKey{9, 2}), 2u);
  EXPECT_EQ(cache.home_node(ChunkKey{9, 3}), 0u);
}

}  // namespace
}  // namespace dpar::cache
