// Edge cases of the I/O schedulers and the disk device beyond the main
// suites: deadline write expiry, C-SCAN wrap exactness, CFQ slice expiry,
// anticipation interruption, and device accounting.
#include <gtest/gtest.h>

#include <vector>

#include "disk/device.hpp"
#include "disk/scheduler.hpp"
#include "sim/engine.hpp"

namespace dpar::disk {
namespace {

using sim::Engine;
using sim::Time;

Request req(std::uint64_t id, std::uint64_t lba, std::uint32_t sectors,
            std::uint64_t ctx = 0, bool write = false) {
  Request r;
  r.id = id;
  r.lba = lba;
  r.sectors = sectors;
  r.context = ctx;
  r.is_write = write;
  return r;
}

TEST(DeadlineScheduler, WriteDeadlineLongerThanRead) {
  auto s = make_deadline_scheduler(sim::msec(100), sim::msec(1000));
  s->enqueue(req(1, 900000, 8, 0, /*write=*/true), 0);
  s->enqueue(req(2, 1000, 8, 0, /*write=*/false), 0);
  // At 500 ms the read (expired at 100 ms) must pre-empt the sweep; the
  // write (expires at 1000 ms) must not.
  auto d = s->next(500000, sim::msec(500));
  ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
  EXPECT_EQ(d.request.id, 2u);
}

TEST(DeadlineScheduler, StaleFifoEntriesAreSkipped) {
  auto s = make_deadline_scheduler(sim::msec(10), sim::msec(10));
  s->enqueue(req(1, 100, 8), 0);
  s->enqueue(req(2, 200, 8), 0);
  // Serve both via the sweep before expiry.
  (void)s->next(0, sim::msec(1));
  (void)s->next(108, sim::msec(2));
  EXPECT_EQ(s->pending(), 0u);
  // Their FIFO entries are stale; a later request must still dispatch.
  s->enqueue(req(3, 300, 8), sim::msec(50));
  auto d = s->next(0, sim::msec(100));
  ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
  EXPECT_EQ(d.request.id, 3u);
}

TEST(CscanScheduler, ExactWrapBehaviour) {
  auto s = make_cscan_scheduler();
  s->enqueue(req(1, 100, 8), 0);
  s->enqueue(req(2, 500, 8), 0);
  // Head exactly at 500: lower_bound picks 500 itself.
  auto d = s->next(500, 0);
  EXPECT_EQ(d.request.lba, 500u);
  // Head beyond everything: wraps to the lowest.
  d = s->next(10000, 0);
  EXPECT_EQ(d.request.lba, 100u);
}

TEST(CfqScheduler, SliceExpiryRotatesContexts) {
  CfqParams p;
  p.slice_sync = sim::msec(10);
  auto s = make_cfq_scheduler(p);
  // Two contexts, several requests each.
  for (int i = 0; i < 3; ++i) {
    s->enqueue(req(static_cast<std::uint64_t>(i), 1000u + i * 8, 8, 1), 0);
    s->enqueue(req(static_cast<std::uint64_t>(10 + i), 90000u + i * 8, 8, 2), 0);
  }
  Time now = 0;
  std::vector<std::uint64_t> ctx_order;
  std::uint64_t head = 0;
  while (s->pending() > 0) {
    auto d = s->next(head, now);
    if (d.kind == Decision::Kind::kWaitUntil) {
      now = d.wait_until;
      continue;
    }
    ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
    if (ctx_order.empty() || ctx_order.back() != d.request.context)
      ctx_order.push_back(d.request.context);
    head = d.request.end_lba();
    s->completed(d.request, now);
    now += sim::msec(6);  // two requests exhaust a slice
  }
  // The schedule alternated between the contexts at least once.
  EXPECT_GE(ctx_order.size(), 2u);
}

TEST(DiskDevice, AnticipationWaitInterruptedByNewArrival) {
  Engine eng;
  DiskParams p;
  p.plug_delay = 0;
  DiskDevice dev(eng, p, make_cfq_scheduler());
  std::vector<Time> completions;
  Request r1 = req(1, 1000, 8, /*ctx=*/5);
  r1.done = [&](fault::Status) { completions.push_back(eng.now()); };
  dev.submit(std::move(r1));
  eng.run();  // served; CFQ may now anticipate context 5
  const Time t_first = eng.now();
  // A same-context request arrives during the anticipation window: it must
  // be served promptly (not after the 8 ms window).
  Request r2 = req(2, 1008, 8, /*ctx=*/5);
  r2.done = [&](fault::Status) { completions.push_back(eng.now()); };
  eng.at(t_first + sim::msec(1), [&dev, &r2]() mutable { dev.submit(std::move(r2)); });
  eng.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_LT(completions[1], t_first + sim::msec(3));
}

TEST(DiskDevice, AccountingMatchesWork) {
  Engine eng;
  DiskParams p;
  p.plug_delay = 0;
  DiskDevice dev(eng, p, make_noop_scheduler());
  for (std::uint64_t i = 0; i < 4; ++i) dev.submit(req(i, i * 100000, 64));
  eng.run();
  EXPECT_EQ(dev.requests_served(), 4u);
  EXPECT_EQ(dev.bytes_served(), 4u * 64 * kSectorBytes);
  EXPECT_GT(dev.busy_time(), 0);
  EXPECT_LE(dev.busy_time(), eng.now());
  EXPECT_EQ(dev.trace().dispatches(), 4u);
}

TEST(BlkTrace, KeepEventsOffStillCountsStats) {
  BlkTrace tr;
  tr.set_keep_events(false);
  TraceEvent ev;
  ev.time = sim::msec(1);
  ev.seek_distance = 500;
  tr.record(ev);
  tr.record(ev);
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.dispatches(), 2u);
  EXPECT_DOUBLE_EQ(tr.mean_seek_distance(), 500.0);
}

TEST(Raid0Device, SingleSectorRequests) {
  Engine eng;
  DiskParams p;
  p.plug_delay = 0;
  Raid0Device raid(eng, p, make_noop_scheduler(), make_noop_scheduler(), 128);
  int done = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    Request r = req(i, i * 128, 1);  // one sector in each chunk
    r.done = [&done](fault::Status) { ++done; };
    raid.submit(std::move(r));
  }
  eng.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(raid.member(0).requests_served(), 2u);
  EXPECT_EQ(raid.member(1).requests_served(), 2u);
}

}  // namespace
}  // namespace dpar::disk
