// Focused tests of driver edge cases: Strategy-2 internals, DualPar
// normal-mode consistency, ghost forking at barriers, vanilla piecewise
// issuance, and network determinism.
#include <gtest/gtest.h>

#include <memory>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

harness::TestbedConfig small_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  return cfg;
}

TEST(PreexecDetails, WindowNeverExceedsQuotaByMuch) {
  harness::TestbedConfig cfg = small_config();
  cfg.dualpar.cache_quota = 256 * 1024;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 8 << 20);
  dc.file_size = 8 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("s2", 1, tb.preexec(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  // Total prefetch volume is bounded by the data actually consumed plus at
  // most one window of overshoot per process.
  const auto& st = tb.preexec().stats();
  EXPECT_LE(st.prefetch_issued_bytes, (8u << 20) + 512 * 1024);
}

TEST(PreexecDetails, MispredictedStreamFallsBackToDirectReads) {
  harness::Testbed tb(small_config());
  wl::DependentConfig dc;
  dc.file_size = 16 << 20;
  dc.file = tb.create_file("f", dc.file_size);
  dc.request_size = 64 * 1024;
  dc.requests = 30;
  auto& job = tb.add_job("s2", 1, tb.preexec(),
                         [dc](std::uint32_t) { return wl::make_dependent(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 30u * 64 * 1024);
  // Nearly every normal read had to fetch itself.
  EXPECT_GE(tb.preexec().stats().direct_misses, 25u);
}

TEST(PreexecDetails, StrategyTwoNeverDeadlocksOnTinyQuota) {
  harness::TestbedConfig cfg = small_config();
  cfg.dualpar.cache_quota = 16 * 1024;  // smaller than one call's data
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 2 << 20);
  dc.file_size = 2 << 20;
  dc.segment_size = 16 * 1024;  // one call = 16 segments = 256 KB > quota
  auto& job = tb.add_job("s2", 2, tb.preexec(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 2u << 20);
}

TEST(DualParDetails, NormalModeWriteSupersedesDirtyCache) {
  // A job latched back to normal mode must not later flush stale dirty data
  // over a write-through.
  harness::Testbed tb(small_config());
  auto& cache = tb.cache();
  const pfs::FileId f = tb.create_file("f", 1 << 20);
  // Simulate leftover dirty state from a data-driven phase.
  cache.write(f, pfs::Segment{0, 64 * 1024}, /*owner=*/42);
  ASSERT_EQ(cache.dirty_segments(f).size(), 1u);
  // A normal-mode write through the DualPar driver covers the same range.
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 64 * 1024;
  dc.segment_size = 64 * 1024;
  dc.segments_per_call = 1;
  dc.is_write = true;
  auto& job = tb.add_job("w", 1, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(cache.dirty_segments(f).empty());
}

TEST(DualParDetails, BarrierParkedProcessesGetGhosts) {
  // 2 ranks: rank 1 computes then barriers; rank 0 misses. The cycle must
  // include rank 1's future reads (its ghost is forked at the barrier).
  harness::Testbed tb(small_config());
  wl::MpiIoTestConfig mc;
  mc.file_size = 4 << 20;
  mc.file = tb.create_file("f", mc.file_size);
  mc.request_size = 16 * 1024;
  mc.barrier_every_call = true;
  auto& job = tb.add_job("m", 2, tb.dualpar(),
                         [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  const auto& st = tb.dualpar().stats();
  // More ghosts than cycles * 1: barrier-parked ranks were forked too.
  EXPECT_GE(st.ghost_forks, st.cycles * 2);
  // Both ranks' reads were prefetched: hit bytes dominate.
  EXPECT_GT(st.cache_hit_bytes, st.miss_direct_bytes);
}

TEST(DualParDetails, ConcurrentJobsKeepIndependentCycles) {
  harness::Testbed tb(small_config());
  wl::DemoConfig d1, d2;
  d1.file = tb.create_file("a", 4 << 20);
  d2.file = tb.create_file("b", 4 << 20);
  d1.file_size = d2.file_size = 4 << 20;
  d1.segment_size = d2.segment_size = 16 * 1024;
  auto& j1 = tb.add_job("a", 2, tb.dualpar(),
                        [d1](std::uint32_t) { return wl::make_demo(d1); },
                        dualpar::Policy::kForcedDataDriven);
  auto& j2 = tb.add_job("b", 2, tb.dualpar(),
                        [d2](std::uint32_t) { return wl::make_demo(d2); },
                        dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(j1.finished());
  EXPECT_TRUE(j2.finished());
  EXPECT_EQ(j1.total_bytes(), 4u << 20);
  EXPECT_EQ(j2.total_bytes(), 4u << 20);
}

TEST(DualParDetails, WriteHoldReleasesAfterWriteback) {
  harness::TestbedConfig cfg = small_config();
  cfg.dualpar.cache_quota = 128 * 1024;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 2 << 20);
  dc.file_size = 2 << 20;
  dc.segment_size = 64 * 1024;
  dc.segments_per_call = 1;  // 16 calls per rank -> several quota holds
  dc.is_write = true;
  auto& job = tb.add_job("w", 2, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  // Multiple write-back cycles were needed at this quota.
  EXPECT_GE(tb.dualpar().stats().cycles, 2u);
  EXPECT_TRUE(tb.cache().all_dirty_segments().empty());
}

TEST(VanillaDetails, PiecewiseIssuesOneRequestPerSegment) {
  harness::Testbed tb(small_config());
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 1 << 20;
  dc.segment_size = 4096;  // 16 pieces per call
  auto& job = tb.add_job("v", 1, tb.vanilla(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  std::uint64_t server_requests = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    server_requests += tb.server(s).requests_handled();
  // One server request per 4 KB piece (no batching for independent I/O).
  EXPECT_GE(server_requests, (1u << 20) / 4096);
}

TEST(VanillaDetails, ListIoBatchingCanBeRestored) {
  harness::Testbed tb(small_config());
  tb.vanilla().set_piecewise_strided(false);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 1 << 20;
  dc.segment_size = 4096;
  auto& job = tb.add_job("v", 1, tb.vanilla(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  // With list I/O the client merges adjacent runs; far fewer server messages.
  EXPECT_LT(tb.network().messages_sent(), 2000u);
}

TEST(NetworkDetails, JitterIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 2;
    cfg.compute_nodes = 2;
    cfg.net.seed = seed;
    harness::Testbed tb(cfg);
    wl::DemoConfig dc;
    dc.file = tb.create_file("f", 2 << 20);
    dc.file_size = 2 << 20;
    dc.segment_size = 16 * 1024;
    auto& job = tb.add_job("j", 2, tb.vanilla(),
                           [dc](std::uint32_t) { return wl::make_demo(dc); },
                           dualpar::Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // different seeds shuffle arrival order
}

TEST(TestbedDetails, RunThrowsOnUndrainableDeadlock) {
  // A job whose driver never completes I/O must be caught by the guard in
  // Testbed::run rather than silently reporting success.
  struct StuckDriver : mpi::IoDriver {
    void io(mpi::Process&, const mpi::IoCall&, sim::UniqueFunction) override {}
    std::string name() const override { return "stuck"; }
  };
  harness::Testbed tb(small_config());
  StuckDriver stuck;
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 64 * 1024;
  dc.segment_size = 4096;
  tb.add_job("j", 1, stuck, [dc](std::uint32_t) { return wl::make_demo(dc); },
             dualpar::Policy::kForcedNormal);
  // Bounded event budget: the periodic EMC tick keeps the queue alive
  // forever, so the guard must fire at the cap.
  EXPECT_THROW(tb.run(/*max_events=*/100'000), std::runtime_error);
}

}  // namespace
}  // namespace dpar
