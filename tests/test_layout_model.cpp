// Differential tests: the closed-form striping decomposition against the
// frozen per-chunk reference loop (layout_reference.cpp), over randomized
// layouts — non-power-of-two units, 1 to 300 servers, offsets and lengths
// straddling unit and round boundaries — plus the structural invariants the
// client send path relies on (partition, maximal coalescing, touched list).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pfs/layout.hpp"
#include "sim/rng.hpp"

namespace dpar::pfs {
namespace {

using PerServer = std::vector<std::vector<ServerRun>>;

PerServer closed_form(const StripeLayout& base, const Segment& seg) {
  StripeLayout layout = base;
  layout.reference_decompose = false;
  PerServer out;
  decompose_segment(layout, seg, out);
  return out;
}

PerServer reference(const StripeLayout& base, const Segment& seg) {
  PerServer out;
  out.resize(base.num_servers);
  decompose_segment_reference(base, seg, out);
  return out;
}

/// Invariants both decompositions must uphold for a single segment: the runs
/// partition the segment's bytes, and each server's list is sorted and
/// maximally coalesced.
void check_invariants(const StripeLayout& layout, const Segment& seg,
                      const PerServer& per_server) {
  std::uint64_t total = 0;
  for (const auto& runs : per_server) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      ASSERT_GT(runs[i].length, 0u);
      total += runs[i].length;
      if (i > 0) {
        ASSERT_GT(runs[i].local_offset,
                  runs[i - 1].local_offset + runs[i - 1].length)
            << "runs not sorted or not maximally coalesced";
      }
    }
  }
  ASSERT_EQ(total, seg.length) << "unit=" << layout.unit_bytes
                               << " servers=" << layout.num_servers
                               << " off=" << seg.offset << " len=" << seg.length;
}

TEST(LayoutModel, ClosedFormMatchesReferenceRandomized) {
  sim::Rng rng(0x5ca1e);
  for (int round = 0; round < 600; ++round) {
    StripeLayout layout;
    layout.unit_bytes = 1 + rng.uniform(256 * 1024);  // arbitrary, non-pow2
    layout.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform(299));
    // Lengths span several striping rounds but keep the reference loop's
    // per-chunk iteration count bounded.
    const std::uint64_t span = layout.unit_bytes * layout.num_servers;
    const std::uint64_t off = rng.uniform(span * 8);
    const std::uint64_t len = 1 + rng.uniform(span * 4);
    const Segment seg{off, len};
    const PerServer closed = closed_form(layout, seg);
    const PerServer ref = reference(layout, seg);
    ASSERT_EQ(closed, ref) << "unit=" << layout.unit_bytes
                           << " servers=" << layout.num_servers << " off=" << off
                           << " len=" << len;
    check_invariants(layout, seg, closed);
  }
}

TEST(LayoutModel, EdgeStraddlingOffsetsAndLengths) {
  for (std::uint64_t unit : {std::uint64_t{1}, std::uint64_t{3},
                             std::uint64_t{4096}, std::uint64_t{65536},
                             std::uint64_t{65537}}) {
    for (std::uint32_t servers : {1u, 2u, 7u, 300u}) {
      StripeLayout layout{unit, servers};
      const std::uint64_t round = unit * servers;
      for (std::uint64_t off :
           {std::uint64_t{0}, unit - 1, unit, unit + 1, round - 1, round,
            round + 1, 5 * round + unit / 2}) {
        for (std::uint64_t len : {std::uint64_t{1}, unit - 1, unit, unit + 1,
                                  round - 1, round, round + 1, 3 * round}) {
          if (len == 0) continue;  // unit - 1 when unit == 1
          const Segment seg{off, len};
          ASSERT_EQ(closed_form(layout, seg), reference(layout, seg))
              << "unit=" << unit << " servers=" << servers << " off=" << off
              << " len=" << len;
        }
      }
    }
  }
}

TEST(LayoutModel, MultiSegmentAccumulationMatchesReference) {
  // The vector overload accumulates across calls, coalescing a new segment's
  // first runs against the previous segment's tails; the frozen loop must
  // agree on the combined result (the client issues list I/O this way).
  sim::Rng rng(0xacc);
  for (int round = 0; round < 100; ++round) {
    StripeLayout closed_layout{1 + rng.uniform(64 * 1024),
                               1 + static_cast<std::uint32_t>(rng.uniform(63))};
    StripeLayout ref_layout = closed_layout;
    ref_layout.reference_decompose = true;
    const std::uint64_t span =
        closed_layout.unit_bytes * closed_layout.num_servers;
    PerServer closed, ref;
    std::uint64_t cursor = rng.uniform(span);
    for (int s = 0; s < 6; ++s) {
      // Half the time exactly adjacent to the previous segment, so runs
      // coalesce across calls; otherwise a gap.
      if (rng.chance(0.5)) cursor += 1 + rng.uniform(span);
      const Segment seg{cursor, 1 + rng.uniform(span * 2)};
      cursor = seg.end();
      decompose_segment(closed_layout, seg, closed);
      decompose_segment(ref_layout, seg, ref);
      ASSERT_EQ(closed, ref) << "round " << round << " segment " << s;
    }
  }
}

TEST(LayoutModel, ScratchTouchedListsExactlyTheServersWithRuns) {
  sim::Rng rng(0x70c4);
  DecomposeScratch scratch;  // reused across rounds and server counts
  for (int round = 0; round < 200; ++round) {
    StripeLayout layout{1 + rng.uniform(128 * 1024),
                        1 + static_cast<std::uint32_t>(rng.uniform(299))};
    if (rng.chance(0.3)) layout.reference_decompose = true;
    const std::uint64_t span = layout.unit_bytes * layout.num_servers;
    scratch.reset(layout.num_servers);
    PerServer expect;
    const int nsegs = 1 + static_cast<int>(rng.uniform(3));
    for (int s = 0; s < nsegs; ++s) {
      const Segment seg{rng.uniform(span * 4), 1 + rng.uniform(span * 2)};
      decompose_segment(layout, seg, scratch);
      decompose_segment(layout, seg, expect);
    }
    // Same runs as the plain overload.
    ASSERT_GE(scratch.per_server.size(), expect.size());
    for (std::uint32_t s = 0; s < layout.num_servers; ++s)
      ASSERT_EQ(scratch.per_server[s], expect[s]) << "server " << s;
    // touched = exactly the servers with runs, no duplicates.
    std::vector<std::uint32_t> touched = scratch.touched;
    std::sort(touched.begin(), touched.end());
    ASSERT_TRUE(std::adjacent_find(touched.begin(), touched.end()) ==
                touched.end())
        << "duplicate server in touched";
    std::vector<std::uint32_t> nonempty;
    for (std::uint32_t s = 0; s < layout.num_servers; ++s)
      if (!scratch.per_server[s].empty()) nonempty.push_back(s);
    ASSERT_EQ(touched, nonempty);
  }
}

TEST(LayoutModel, ZeroLengthAndHugeOffsets) {
  StripeLayout layout{64 * 1024, 256};
  PerServer out;
  decompose_segment(layout, Segment{12345, 0}, out);
  for (const auto& runs : out) EXPECT_TRUE(runs.empty());
  // Offsets deep into a petabyte file must not overflow the closed form.
  const Segment far{(1ull << 50) + 777, 3 * 64 * 1024 + 11};
  ASSERT_EQ(closed_form(layout, far), reference(layout, far));
}

}  // namespace
}  // namespace dpar::pfs
