// Differential test: the flat-vector RangeSet against a reference model kept
// as a std::map (the pre-overhaul implementation), under randomized
// add/remove/covers/intersects/gaps_within sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "cache/rangeset.hpp"
#include "sim/rng.hpp"

namespace dpar::cache {
namespace {

/// Reference implementation: ordered map begin -> end (the seed RangeSet).
class MapRangeSet {
 public:
  void add(std::uint64_t begin, std::uint64_t end) {
    if (begin >= end) return;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) {
        begin = prev->first;
        end = std::max(end, prev->second);
        it = ranges_.erase(prev);
      }
    }
    while (it != ranges_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = ranges_.erase(it);
    }
    ranges_.emplace(begin, end);
  }

  void remove(std::uint64_t begin, std::uint64_t end) {
    if (begin >= end) return;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) --it;
    while (it != ranges_.end() && it->first < end) {
      const std::uint64_t rb = it->first;
      const std::uint64_t re = it->second;
      if (re <= begin) {
        ++it;
        continue;
      }
      it = ranges_.erase(it);
      if (rb < begin) ranges_.emplace(rb, begin);
      if (re > end) it = ranges_.emplace(end, re).first;
    }
  }

  bool covers(std::uint64_t begin, std::uint64_t end) const {
    if (begin >= end) return true;
    auto it = ranges_.upper_bound(begin);
    if (it == ranges_.begin()) return false;
    --it;
    return it->second >= end;
  }

  bool intersects(std::uint64_t begin, std::uint64_t end) const {
    if (begin >= end) return false;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > begin) return true;
    }
    return it != ranges_.end() && it->first < end;
  }

  std::vector<ByteRange> gaps_within(std::uint64_t begin, std::uint64_t end) const {
    std::vector<ByteRange> gaps;
    std::uint64_t cursor = begin;
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > cursor) cursor = std::min(prev->second, end);
    }
    for (; it != ranges_.end() && it->first < end; ++it) {
      if (it->first > cursor) gaps.push_back(ByteRange{cursor, it->first});
      cursor = std::max(cursor, std::min(it->second, end));
    }
    if (cursor < end) gaps.push_back(ByteRange{cursor, end});
    return gaps;
  }

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& [b, e] : ranges_) sum += e - b;
    return sum;
  }

  std::vector<ByteRange> ranges() const {
    std::vector<ByteRange> out;
    out.reserve(ranges_.size());
    for (const auto& [b, e] : ranges_) out.push_back(ByteRange{b, e});
    return out;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> ranges_;
};

class RangeSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeSetModelTest, RandomizedOpsMatchReferenceModel) {
  sim::Rng rng(GetParam());
  RangeSet flat;
  MapRangeSet model;
  constexpr std::uint64_t kSpace = 1 << 16;  // small space forces overlaps
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t b = rng.uniform(kSpace);
    // Mix of tiny, chunk-sized and huge ranges, including begin == end.
    const std::uint64_t len = rng.uniform(3) == 0 ? rng.uniform(kSpace / 2)
                                                  : rng.uniform(256);
    const std::uint64_t e = std::min(b + len, kSpace);
    switch (rng.uniform(4)) {
      case 0:
      case 1: {
        // add() reports the bytes newly covered: cross-check the delta
        // against the model's before/after totals (it feeds the cache's
        // usage counters).
        const std::uint64_t before = model.total_bytes();
        model.add(b, e);
        EXPECT_EQ(flat.add(b, e), model.total_bytes() - before) << "op " << op;
        break;
      }
      case 2: {
        const std::uint64_t before = model.total_bytes();
        model.remove(b, e);
        EXPECT_EQ(flat.remove(b, e), before - model.total_bytes()) << "op " << op;
        break;
      }
      default: {
        EXPECT_EQ(flat.covers(b, e), model.covers(b, e)) << "op " << op;
        EXPECT_EQ(flat.intersects(b, e), model.intersects(b, e)) << "op " << op;
        EXPECT_EQ(flat.gaps_within(b, e), model.gaps_within(b, e)) << "op " << op;
        break;
      }
    }
    if (op % 256 == 0) {
      ASSERT_EQ(flat.ranges(), model.ranges()) << "op " << op;
      ASSERT_EQ(flat.total_bytes(), model.total_bytes()) << "op " << op;
      ASSERT_EQ(flat.empty(), model.ranges().empty()) << "op " << op;
    }
  }
  EXPECT_EQ(flat.ranges(), model.ranges());
  EXPECT_EQ(flat.total_bytes(), model.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeSetModelTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

TEST(RangeSetModel, AddRemoveReportByteDeltas) {
  RangeSet rs;
  EXPECT_EQ(rs.add(0, 100), 100u);
  EXPECT_EQ(rs.add(50, 150), 50u);   // half already covered
  EXPECT_EQ(rs.add(20, 80), 0u);     // fully covered
  EXPECT_EQ(rs.add(10, 10), 0u);     // empty
  EXPECT_EQ(rs.total_bytes(), 150u);
  EXPECT_EQ(rs.remove(140, 200), 10u);  // partial overlap on the right
  EXPECT_EQ(rs.remove(300, 400), 0u);   // disjoint
  EXPECT_EQ(rs.remove(40, 60), 20u);    // split
  EXPECT_EQ(rs.total_bytes(), 120u);
  rs.clear();
  EXPECT_EQ(rs.total_bytes(), 0u);
}

TEST(RangeSetModel, AdjacentRangesCoalesce) {
  RangeSet rs;
  rs.add(0, 10);
  rs.add(10, 20);  // adjacent, must merge
  ASSERT_EQ(rs.ranges().size(), 1u);
  EXPECT_EQ(rs.ranges()[0], (ByteRange{0, 20}));
  rs.add(30, 40);
  rs.add(21, 29);  // NOT adjacent to either side
  EXPECT_EQ(rs.ranges().size(), 3u);
  rs.add(20, 21);  // bridges [0,20) and [21,29)
  rs.add(29, 30);  // bridges the rest
  ASSERT_EQ(rs.ranges().size(), 1u);
  EXPECT_EQ(rs.ranges()[0], (ByteRange{0, 40}));
}

TEST(RangeSetModel, RemoveSplitsInPlace) {
  RangeSet rs;
  rs.add(0, 100);
  rs.remove(40, 60);
  ASSERT_EQ(rs.ranges().size(), 2u);
  EXPECT_EQ(rs.ranges()[0], (ByteRange{0, 40}));
  EXPECT_EQ(rs.ranges()[1], (ByteRange{60, 100}));
  EXPECT_FALSE(rs.covers(39, 41));
  EXPECT_TRUE(rs.intersects(39, 41));
  const auto gaps = rs.gaps_within(0, 100);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (ByteRange{40, 60}));
}

}  // namespace
}  // namespace dpar::cache
