// Unit and property tests for the disk model, I/O schedulers and device.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "disk/device.hpp"
#include "disk/model.hpp"
#include "disk/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace dpar::disk {
namespace {

using sim::Engine;
using sim::Time;

DiskParams test_params() {
  DiskParams p;
  p.capacity_bytes = 100ull << 30;
  return p;
}

TEST(DiskModel, SequentialIsFasterThanRandom) {
  DiskModel m(test_params());
  const Time seq = m.service_time(0, 32);
  DiskModel m2(test_params());
  const Time rnd = m2.service_time(m2.params().capacity_sectors() / 2, 32);
  EXPECT_LT(seq * 10, rnd);  // order-of-magnitude gap (§I)
}

TEST(DiskModel, ServiceTimeMonotonicInSeekDistance) {
  DiskModel m(test_params());
  Time prev = 0;
  for (std::uint64_t frac = 1; frac <= 8; ++frac) {
    const std::uint64_t lba = m.params().capacity_sectors() * frac / 10;
    const Time t = m.service_time(lba, 32);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(DiskModel, ServeAdvancesHead) {
  DiskModel m(test_params());
  m.serve(1000, 64);
  EXPECT_EQ(m.head(), 1064u);
  // Continuing exactly at the head is streaming: no seek or rotation.
  const Time t = m.service_time(1064, 64);
  const Time pure_transfer =
      sim::transfer_time(64 * kSectorBytes, m.params().bytes_per_sec());
  EXPECT_EQ(t, m.params().command_overhead + pure_transfer);
}

TEST(DiskModel, ForwardGapsCheapBackwardJumpsExpensive) {
  DiskModel m(test_params());
  m.serve(10000, 32);
  // Small forward skip: passed over at angular speed.
  const Time fwd = m.service_time(10032 + 128, 32);
  // Equal-distance backward jump: the sector already passed under the head,
  // so a full rotation-class repositioning is due.
  const Time bwd = m.service_time(10032 - 160, 32);
  EXPECT_LT(fwd * 4, bwd);
  // Medium forward skips never cost more than a true repositioning.
  const std::uint64_t far = m.params().capacity_sectors() / 2;
  EXPECT_LE(m.service_time(10032 + far, 32), m.service_time(10032 + far, 32));
  const Time pass_1mb = m.service_time(10032 + 2048, 32);
  EXPECT_LT(pass_1mb, m.reposition_time(2048) + sim::msec(5));
}

TEST(DiskModel, SustainedSequentialThroughputMatchesMediaRate) {
  DiskModel m(test_params());
  // 1000 consecutive 128 KB requests.
  Time total = 0;
  std::uint64_t lba = 0;
  for (int i = 0; i < 1000; ++i) {
    total += m.serve(lba, 256);
    lba += 256;
  }
  const double bytes = 1000.0 * 256 * kSectorBytes;
  const double mbps = bytes / sim::to_seconds(total) / 1e6;
  EXPECT_NEAR(mbps, m.params().sustained_mb_s, m.params().sustained_mb_s * 0.35);
}

Request make_req(std::uint64_t id, std::uint64_t lba, std::uint32_t sectors,
                 std::uint64_t ctx = 0) {
  Request r;
  r.id = id;
  r.lba = lba;
  r.sectors = sectors;
  r.context = ctx;
  return r;
}

std::vector<std::uint64_t> drain_order(IoScheduler& s) {
  std::vector<std::uint64_t> order;
  std::uint64_t head = 0;
  while (true) {
    Decision d = s.next(head, sim::secs(100));
    if (d.kind == Decision::Kind::kIdle) break;
    if (d.kind == Decision::Kind::kWaitUntil) continue;  // expired by far-future now
    order.push_back(d.request.lba);
    head = d.request.end_lba();
  }
  return order;
}

TEST(NoopScheduler, FifoOrder) {
  auto s = make_noop_scheduler();
  s->enqueue(make_req(1, 500, 8), 0);
  s->enqueue(make_req(2, 100, 8), 0);
  s->enqueue(make_req(3, 900, 8), 0);
  EXPECT_EQ(drain_order(*s), (std::vector<std::uint64_t>{500, 100, 900}));
}

TEST(CscanScheduler, AscendingSweepWithWrap) {
  auto s = make_cscan_scheduler();
  for (std::uint64_t lba : {500u, 100u, 900u, 300u, 700u})
    s->enqueue(make_req(lba, lba, 8), 0);
  std::vector<std::uint64_t> order;
  std::uint64_t head = 400;
  while (true) {
    Decision d = s->next(head, 0);
    if (d.kind != Decision::Kind::kDispatch) break;
    order.push_back(d.request.lba);
    head = d.request.end_lba();
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{500, 700, 900, 100, 300}));
}

TEST(DeadlineScheduler, ExpiredRequestJumpsQueue) {
  auto s = make_deadline_scheduler(sim::msec(100), sim::secs(5));
  s->enqueue(make_req(1, 1000, 8), 0);          // near head after the next one
  s->enqueue(make_req(2, 900000, 8), sim::msec(0));  // far away, will expire
  // Before expiry: sweep order (ascending from head 0).
  Decision d = s->next(0, sim::msec(1));
  EXPECT_EQ(d.request.lba, 1000u);
  // After expiry of request 2 it is served regardless of position.
  d = s->next(d.request.end_lba(), sim::msec(500));
  EXPECT_EQ(d.request.lba, 900000u);
}

TEST(AllSchedulers, EveryRequestIsServedExactlyOnce) {
  for (auto kind : {SchedulerKind::kNoop, SchedulerKind::kDeadline,
                    SchedulerKind::kCscan, SchedulerKind::kCfq}) {
    auto s = make_scheduler(kind);
    sim::Rng rng(11);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 500; ++i) {
      s->enqueue(make_req(i, rng.uniform(1u << 20), 8, rng.uniform(7)), 0);
      ids.push_back(i);
    }
    std::vector<std::uint64_t> served;
    std::uint64_t head = 0;
    Time now = sim::secs(1);
    int guard = 0;
    while (s->pending() > 0 && guard++ < 5000) {
      Decision d = s->next(head, now);
      if (d.kind == Decision::Kind::kDispatch) {
        served.push_back(d.request.id);
        head = d.request.end_lba();
        s->completed(d.request, now);
      } else if (d.kind == Decision::Kind::kWaitUntil) {
        now = std::max(now + 1, d.wait_until);
      } else {
        break;
      }
      now += sim::usec(100);
    }
    std::sort(served.begin(), served.end());
    EXPECT_EQ(served, ids) << s->name();
  }
}

TEST(CfqScheduler, SingleDeepSortedQueueServesAscending) {
  auto s = make_cfq_scheduler();
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i)
    s->enqueue(make_req(static_cast<std::uint64_t>(i), rng.uniform(1u << 22), 8, /*ctx=*/42), 0);
  std::uint64_t head = 0;
  std::vector<std::uint64_t> lbas;
  Time now = 0;
  while (s->pending() > 0) {
    Decision d = s->next(head, now);
    ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
    lbas.push_back(d.request.lba);
    head = d.request.end_lba();
    s->completed(d.request, now);
    now += sim::usec(50);  // fast service keeps the slice alive
  }
  // Ascending except at slice renewals/wraps: count direction reversals.
  int reversals = 0;
  for (std::size_t i = 1; i < lbas.size(); ++i)
    if (lbas[i] < lbas[i - 1]) ++reversals;
  EXPECT_LE(reversals, 3);
}

TEST(CfqScheduler, InterleavedContextsCauseMoreReversalsThanOneContext) {
  auto count_reversals = [](int num_contexts) {
    auto s = make_cfq_scheduler();
    sim::Rng rng(5);
    // Each context owns a distinct disk region and strides through it.
    for (int i = 0; i < 240; ++i) {
      const std::uint64_t ctx = static_cast<std::uint64_t>(i % num_contexts);
      const std::uint64_t lba = ctx * (1u << 22) + static_cast<std::uint64_t>(i) * 64;
      s->enqueue(make_req(static_cast<std::uint64_t>(i), lba, 8, ctx), 0);
    }
    std::uint64_t head = 0;
    Time now = 0;
    int reversals = 0;
    std::uint64_t prev = 0;
    bool first = true;
    while (s->pending() > 0) {
      Decision d = s->next(head, now);
      if (d.kind == Decision::Kind::kWaitUntil) {
        now = d.wait_until;
        continue;
      }
      if (d.kind == Decision::Kind::kIdle) break;
      if (!first && d.request.lba < prev) ++reversals;
      prev = d.request.lba;
      first = false;
      head = d.request.end_lba();
      s->completed(d.request, now);
      // Service time long enough to expire slices between contexts.
      now += sim::msec(30);
    }
    return reversals;
  };
  EXPECT_GT(count_reversals(8), count_reversals(1));
}

TEST(CfqScheduler, ThinkTimeGateDisablesIdling) {
  // A context with a long gap between completion and next request should not
  // trigger anticipation waits once its think time is learned.
  CfqParams p;
  auto s = make_cfq_scheduler(p);
  Time now = 0;
  // Train the context: three rounds of request->completion->long gap.
  for (int round = 0; round < 3; ++round) {
    s->enqueue(make_req(static_cast<std::uint64_t>(round), 1000u * (round + 1), 8, 7), now);
    Decision d = s->next(0, now);
    ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
    now += sim::msec(1);
    s->completed(d.request, now);
    // Mid-slice with empty queue: first rounds may anticipate.
    now += sim::msec(50);  // think time 50 ms >> slice_idle 8 ms
  }
  s->enqueue(make_req(99, 5000, 8, 7), now);
  Decision d = s->next(0, now);
  ASSERT_EQ(d.kind, Decision::Kind::kDispatch);
  now += sim::msec(1);
  s->completed(d.request, now);
  // Queue empty, slice alive; with think time ~50ms the gate must refuse to wait.
  d = s->next(0, now);
  EXPECT_NE(d.kind, Decision::Kind::kWaitUntil);
}

TEST(DiskDevice, ServesSubmittedRequestsAndTraces) {
  Engine eng;
  DiskDevice dev(eng, test_params(), make_cfq_scheduler());
  int completed = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    Request r = make_req(i, i * 1000, 32, i % 3);
    r.done = [&completed](fault::Status) { ++completed; };
    dev.submit(std::move(r));
  }
  eng.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(dev.requests_served(), 10u);
  EXPECT_EQ(dev.trace().events().size(), 10u);
  EXPECT_EQ(dev.bytes_served(), 10u * 32 * kSectorBytes);
  EXPECT_GT(dev.busy_time(), 0);
}

TEST(DiskDevice, DeepSortedBatchBeatsInterleavedArrivals) {
  // The motivating observation (§II): the same set of requests served from a
  // deep pre-sorted queue finishes much faster than when arriving
  // process-interleaved in small windows.
  auto run = [](bool sorted_batch) {
    Engine eng;
    DiskDevice dev(eng, test_params(), make_cfq_scheduler());
    std::vector<Request> reqs;
    // 8 "processes" each striding through its own region.
    for (int k = 0; k < 64; ++k) {
      for (std::uint64_t p = 0; p < 8; ++p) {
        Request r = make_req(p * 1000 + static_cast<std::uint64_t>(k),
                             p * (1u << 21) + static_cast<std::uint64_t>(k) * 2048, 32,
                             sorted_batch ? 0 : p);
        reqs.push_back(std::move(r));
      }
    }
    if (sorted_batch) {
      std::sort(reqs.begin(), reqs.end(),
                [](const Request& a, const Request& b) { return a.lba < b.lba; });
      for (auto& r : reqs) dev.submit(std::move(r));
    } else {
      // Interleaved arrival: one request per process per millisecond window.
      Time t = 0;
      for (std::size_t i = 0; i < reqs.size(); i += 8) {
        for (std::size_t j = i; j < i + 8; ++j) {
          Request r = std::move(reqs[j]);
          eng.at(t, [&dev, r = std::move(r)]() mutable { dev.submit(std::move(r)); });
        }
        t += sim::msec(12);
      }
    }
    eng.run();
    return eng.now();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Raid0Device, SplitsAndCompletesOnce) {
  Engine eng;
  Raid0Device raid(eng, test_params(), make_noop_scheduler(), make_noop_scheduler(),
                   /*chunk_sectors=*/128);
  int completed = 0;
  Request r = make_req(1, 100, 300);  // spans chunks 0,1,2 -> both members
  r.done = [&completed](fault::Status) { ++completed; };
  raid.submit(std::move(r));
  eng.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(raid.member(0).requests_served() + raid.member(1).requests_served(), 2u);
  const std::uint64_t total_bytes =
      raid.member(0).bytes_served() + raid.member(1).bytes_served();
  EXPECT_EQ(total_bytes, 300u * kSectorBytes);
}

TEST(Raid0Device, SequentialStreamUsesBothMembers) {
  Engine eng;
  Raid0Device raid(eng, test_params(), make_noop_scheduler(), make_noop_scheduler(), 128);
  int completed = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Request r = make_req(i, i * 128, 128);
    r.done = [&completed](fault::Status) { ++completed; };
    raid.submit(std::move(r));
  }
  eng.run();
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(raid.member(0).requests_served(), 8u);
  EXPECT_EQ(raid.member(1).requests_served(), 8u);
}

TEST(BlkTrace, WindowSelectsEventsInRange) {
  BlkTrace tr;
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.time = sim::msec(i * 10);
    ev.lba = static_cast<std::uint64_t>(i);
    tr.record(ev);
  }
  const auto w = tr.window(sim::msec(20), sim::msec(50));
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.front().lba, 2u);
  EXPECT_EQ(w.back().lba, 4u);
}

TEST(BlkTrace, SeekDistanceSlotSampling) {
  BlkTrace tr;
  TraceEvent ev;
  ev.time = sim::msec(100);
  ev.seek_distance = 1000;
  tr.record(ev);
  ev.time = sim::msec(200);
  ev.seek_distance = 3000;
  tr.record(ev);
  EXPECT_DOUBLE_EQ(tr.slot_seek_distance(sim::msec(600)), 2000.0);
}

}  // namespace
}  // namespace dpar::disk
