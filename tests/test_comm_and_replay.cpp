// Tests for MPI point-to-point messaging, the master/worker workload, the
// server page cache with read-ahead, and trace replay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/testbed.hpp"
#include "pfs/server_cache.hpp"
#include "wl/trace_replay.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

using mpi::Op;
using mpi::OpCompute;
using mpi::OpEnd;
using mpi::OpIo;
using mpi::OpRecv;
using mpi::OpSend;

class ScriptProgram final : public mpi::Program {
 public:
  explicit ScriptProgram(std::vector<Op> ops) : ops_(std::move(ops)) {}
  Op next(mpi::ProgramContext&) override {
    if (pos_ >= ops_.size()) return OpEnd{};
    return ops_[pos_++];
  }
  std::unique_ptr<mpi::Program> clone() const override {
    auto p = std::make_unique<ScriptProgram>(ops_);
    p->pos_ = pos_;
    return p;
  }

 private:
  std::vector<Op> ops_;
  std::size_t pos_ = 0;
};

harness::TestbedConfig small_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  return cfg;
}

TEST(PointToPoint, SendRecvRendezvousCompletes) {
  harness::Testbed tb(small_config());
  auto& job = tb.add_job("p2p", 2, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    if (rank == 0) {
      ops.push_back(OpSend{1, 1 << 20, /*tag=*/7});
    } else {
      ops.push_back(OpCompute{sim::msec(5)});  // late receiver
      ops.push_back(OpRecv{0, 7});
    }
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  // Sender blocked until the receiver arrived (rendezvous), then both paid
  // the transfer: everyone finishes after 5 ms + transfer time.
  EXPECT_GT(job.process(0).finish_time(), sim::msec(5));
  // Communication time is folded into the compute probe (§IV-B measurement).
  EXPECT_GT(job.process(0).compute_time(), sim::msec(5));
}

TEST(PointToPoint, MatchingTagsCompleteInOrder) {
  harness::Testbed tb(small_config());
  auto& job = tb.add_job("tags", 2, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    if (rank == 0) {
      ops.push_back(OpSend{1, 1000, /*tag=*/2});
      ops.push_back(OpSend{1, 2000, /*tag=*/1});
    } else {
      ops.push_back(OpRecv{0, 2});
      ops.push_back(OpRecv{0, 1});
    }
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
}

TEST(PointToPoint, MismatchedTagOrderDeadlocksLikeRealMpi) {
  // Blocking (rendezvous) sends awaiting receives posted in the opposite tag
  // order deadlock in real MPI; the testbed's drain guard must report it
  // rather than hang or claim success.
  harness::Testbed tb(small_config());
  tb.add_job("deadlock", 2, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    if (rank == 0) {
      ops.push_back(OpSend{1, 1000, /*tag=*/2});
      ops.push_back(OpSend{1, 1000, /*tag=*/1});
    } else {
      ops.push_back(OpRecv{0, 1});  // awaits tag 1 while tag 2 is in flight
      ops.push_back(OpRecv{0, 2});
    }
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  EXPECT_THROW(tb.run(/*max_events=*/100'000), std::runtime_error);
}

TEST(PointToPoint, ManyPairsInParallel) {
  harness::Testbed tb(small_config());
  auto& job = tb.add_job("pairs", 8, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    if (rank % 2 == 0) {
      ops.push_back(OpSend{rank + 1, 64 * 1024, 0});
      ops.push_back(OpRecv{rank + 1, 1});
    } else {
      ops.push_back(OpRecv{rank - 1, 0});
      ops.push_back(OpSend{rank - 1, 64 * 1024, 1});
    }
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
}

TEST(PointToPoint, BadRankThrows) {
  harness::Testbed tb(small_config());
  tb.add_job("bad", 2, tb.vanilla(), [&](std::uint32_t rank) {
    std::vector<Op> ops;
    if (rank == 0) ops.push_back(OpSend{9, 100, 0});
    return std::make_unique<ScriptProgram>(std::move(ops));
  }, dualpar::Policy::kForcedNormal);
  EXPECT_THROW(tb.run(), std::invalid_argument);
}

TEST(Allreduce, SynchronizesAndCostsMoreThanABarrier) {
  auto finish = [&](std::uint64_t bytes) {
    harness::Testbed tb(small_config());
    auto& job = tb.add_job("ar", 4, tb.vanilla(), [&, bytes](std::uint32_t rank) {
      std::vector<Op> ops;
      ops.push_back(OpCompute{sim::msec(rank)});  // skewed arrivals
      if (bytes == 0) {
        ops.push_back(mpi::OpBarrier{});
      } else {
        ops.push_back(mpi::OpAllreduce{bytes});
      }
      return std::make_unique<ScriptProgram>(std::move(ops));
    }, dualpar::Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  const auto barrier = finish(0);
  const auto small = finish(1024);
  const auto big = finish(4 << 20);
  EXPECT_GT(small, barrier);
  EXPECT_GT(big, small);
  // Everyone leaves together: at least as late as the slowest arrival.
  EXPECT_GE(barrier, sim::msec(3));
}

TEST(Allreduce, BtioWithAllreduceStillRunsUnderDualPar) {
  harness::Testbed tb(small_config());
  wl::BtioConfig c;
  c.total_bytes = 2 << 20;
  c.write_steps = 4;
  c.read_back = true;
  c.allreduce_bytes = 64 * 1024;
  c.file = tb.create_file("f", c.total_bytes * 2);
  auto& job = tb.add_job("bt", 4, tb.dualpar(),
                         [c](std::uint32_t) { return wl::make_btio(c); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(tb.cache().all_dirty_segments().empty());
  // The collective's wait time lands in the compute probe.
  EXPECT_GT(job.total_compute_time(), 0);
}

TEST(MasterWorker, AllQueriesProcessedUnderVanilla) {
  harness::Testbed tb(small_config());
  wl::MasterWorkerConfig c;
  c.database_size = 16 << 20;
  c.queries = 9;
  c.fragments = 4;
  c.max_size = 20'000;
  c.database_file = tb.create_file("db", c.database_size);
  c.result_file = tb.create_file("res", 16 << 20);
  auto& job = tb.add_job("mw", 4, tb.vanilla(),
                         [c](std::uint32_t) { return wl::make_master_worker(c); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  // Master wrote one result per query; workers read one slice per query.
  std::uint64_t writes = job.process(0).bytes_written();
  EXPECT_GT(writes, 9u * c.min_size);
  std::uint64_t reads = 0;
  for (std::uint32_t r = 1; r < 4; ++r) reads += job.process(r).bytes_read();
  EXPECT_GT(reads, 9u * c.min_size);
}

TEST(MasterWorker, RunsUnderDualParWithoutDeadlock) {
  // Workers suspend on read misses while the master blocks in recv: the
  // comm-blocked master must count as parked so the cycle can proceed.
  harness::Testbed tb(small_config());
  wl::MasterWorkerConfig c;
  c.database_size = 16 << 20;
  c.queries = 12;
  c.fragments = 4;
  c.max_size = 50'000;
  c.database_file = tb.create_file("db", c.database_size);
  c.result_file = tb.create_file("res", 16 << 20);
  auto& job = tb.add_job("mw", 4, tb.dualpar(),
                         [c](std::uint32_t) { return wl::make_master_worker(c); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(tb.cache().all_dirty_segments().empty());
}

TEST(MasterWorker, SingleRankJobEndsImmediately) {
  harness::Testbed tb(small_config());
  wl::MasterWorkerConfig c;
  c.database_file = tb.create_file("db", 1 << 20);
  c.result_file = tb.create_file("res", 1 << 20);
  auto& job = tb.add_job("mw", 1, tb.vanilla(),
                         [c](std::uint32_t) { return wl::make_master_worker(c); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 0u);
}

TEST(ServerCache, HitsSkipTheDisk) {
  pfs::ServerCacheParams p;
  p.capacity_bytes = 1 << 20;
  pfs::ServerCache c(p);
  EXPECT_TRUE(c.enabled());
  EXPECT_FALSE(c.covers(1, 0, 4096));
  c.insert(1, 0, 64 * 1024);
  EXPECT_TRUE(c.covers(1, 0, 4096));
  EXPECT_TRUE(c.covers(1, 60 * 1024, 4 * 1024));
  EXPECT_FALSE(c.covers(1, 60 * 1024, 8 * 1024));
  EXPECT_FALSE(c.covers(2, 0, 1));
  EXPECT_EQ(c.resident_bytes(), 64u * 1024);
}

TEST(ServerCache, DisabledByDefault) {
  pfs::ServerCache c;
  EXPECT_FALSE(c.enabled());
  c.insert(1, 0, 4096);
  EXPECT_FALSE(c.covers(1, 0, 1));
}

TEST(ServerCache, ReadaheadOnlyOnSequentialStreams) {
  pfs::ServerCacheParams p;
  p.capacity_bytes = 1 << 20;
  p.readahead_bytes = 128 * 1024;
  pfs::ServerCache c(p);
  EXPECT_EQ(c.readahead_hint(1, 0, 64 * 1024), 0u);             // first touch
  EXPECT_EQ(c.readahead_hint(1, 64 * 1024, 64 * 1024), 128u * 1024);  // sequential
  EXPECT_EQ(c.readahead_hint(1, 10 << 20, 64 * 1024), 0u);      // jump resets
  // After read-ahead, the stream cursor includes the prefetched window.
  EXPECT_EQ(c.readahead_hint(1, (10 << 20) + 64 * 1024, 4096), 128u * 1024);
}

TEST(ServerCache, FifoEvictionBoundsResidency) {
  pfs::ServerCacheParams p;
  p.capacity_bytes = 128 * 1024;
  pfs::ServerCache c(p);
  for (std::uint64_t i = 0; i < 8; ++i) c.insert(1, i * 64 * 1024, 64 * 1024);
  EXPECT_LE(c.resident_bytes(), 128u * 1024);
  EXPECT_GT(c.evicted_bytes(), 0u);
  EXPECT_FALSE(c.covers(1, 0, 1));                  // oldest gone
  EXPECT_TRUE(c.covers(1, 7 * 64 * 1024, 64 * 1024));  // newest resident
}

TEST(ServerCache, EndToEndRereadIsServedFromMemory) {
  harness::TestbedConfig cfg = small_config();
  cfg.server.page_cache.capacity_bytes = 64 << 20;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 4 << 20);
  dc.file_size = 4 << 20;
  dc.segment_size = 64 * 1024;
  // Two identical jobs in sequence: the second re-reads what the first
  // faulted in.
  tb.add_job("cold", 2, tb.vanilla(), [dc](std::uint32_t) { return wl::make_demo(dc); },
             dualpar::Policy::kForcedNormal);
  tb.add_job("warm", 2, tb.vanilla(), [dc](std::uint32_t) { return wl::make_demo(dc); },
             dualpar::Policy::kForcedNormal, sim::secs(5));
  tb.run();
  std::uint64_t hits = 0, misses = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s) {
    hits += tb.server(s).page_cache().hits();
    misses += tb.server(s).page_cache().misses();
  }
  EXPECT_GT(hits, misses / 2);  // the warm pass hits
  // Disks served roughly one copy of the data, not two.
  std::uint64_t disk_read = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    disk_read += tb.server(s).disk_bytes_read();
  EXPECT_LT(disk_read, (4u << 20) * 3 / 2);
}

TEST(TraceReplay, CsvRoundTrip) {
  std::vector<wl::TraceOp> ops;
  ops.push_back({0, wl::TraceOp::Kind::kCompute, 0, 0, 0, sim::msec(2)});
  ops.push_back({0, wl::TraceOp::Kind::kRead, 3, 4096, 65536, 0});
  ops.push_back({1, wl::TraceOp::Kind::kWrite, 3, 0, 1024, 0});
  ops.push_back({1, wl::TraceOp::Kind::kBarrier, 0, 0, 0, 0});
  const std::string csv = wl::format_trace_csv(ops);
  EXPECT_EQ(wl::parse_trace_csv(csv), ops);
}

TEST(TraceReplay, ParserRejectsGarbage) {
  EXPECT_THROW(wl::parse_trace_csv("0,frobnicate,0,0,0,0\n"), std::invalid_argument);
  EXPECT_THROW(wl::parse_trace_csv("0,read,1,2\n"), std::invalid_argument);
  EXPECT_TRUE(wl::parse_trace_csv("# comment only\nrank,op,file,offset,length,"
                                  "duration_us\n").empty());
}

TEST(TraceReplay, ReplaysThroughTheFullStack) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("f", 8 << 20);
  std::string csv = "rank,op,file,offset,length,duration_us\n";
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 8; ++i) {
      csv += std::to_string(r) + ",compute,0,0,0,500\n";
      csv += std::to_string(r) + ",read," + std::to_string(f) + "," +
             std::to_string((r * 8 + i) * 65536) + ",65536,0\n";
    }
    csv += std::to_string(r) + ",barrier,0,0,0,0\n";
    csv += std::to_string(r) + ",write," + std::to_string(f) + "," +
           std::to_string(r * 65536) + ",65536,0\n";
  }
  auto ops = wl::parse_trace_csv(csv);
  auto& job = tb.add_job("replay", 2, tb.dualpar(), [ops](std::uint32_t rank) {
    return wl::make_trace_replay(ops, rank);
  }, dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 2u * 8 * 65536 + 2u * 65536);
  EXPECT_TRUE(tb.cache().all_dirty_segments().empty());
}

TEST(TraceReplay, CloneSupportsGhosting) {
  std::vector<wl::TraceOp> ops;
  for (int i = 0; i < 4; ++i)
    ops.push_back({0, wl::TraceOp::Kind::kRead, 1,
                   static_cast<std::uint64_t>(i) * 4096, 4096, 0});
  auto prog = wl::make_trace_replay(ops, 0);
  mpi::ProgramContext ctx;
  (void)prog->next(ctx);
  auto clone = prog->clone();
  const Op a = prog->next(ctx);
  const Op b = clone->next(ctx);
  EXPECT_EQ(std::get<OpIo>(a).call.segments[0].offset,
            std::get<OpIo>(b).call.segments[0].offset);
}

}  // namespace
}  // namespace dpar
