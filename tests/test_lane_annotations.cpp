// Lane-annotation contract (sim/lane_annotations.hpp): the macros are pure
// metadata. They must not change a type's layout or triviality, and they
// must not alter the *runtime* half of the lane contract — an annotated
// class trips exactly the same engine invariants as an unannotated one.
// (The disabled-path compile check lives in test_lane_annotations_disabled.cpp;
// the object-code diff lives in the AnnotationsZeroCost ctest.)
#include <cstdint>
#include <stdexcept>
#include <type_traits>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/lane_annotations.hpp"

namespace dpar {
namespace {

// ---- layout / triviality parity -------------------------------------------
// Twin structs, identical but for the annotations. Every observable type
// property must agree, with or without clang's annotate attribute in play.

struct Plain {
  std::uint64_t tracked = 0;
  std::uint32_t shard = 0;
  void note() { ++tracked; }
};

class DPAR_LANE_OWNED(shard) Annotated {
 public:
  DPAR_EXCLUSIVE_LANE std::uint64_t tracked = 0;
  DPAR_LANE_SAFE std::uint32_t shard = 0;
  DPAR_CROSS_LANE_API void note() { ++tracked; }
};

static_assert(sizeof(Annotated) == sizeof(Plain),
              "lane annotations changed object layout");
static_assert(alignof(Annotated) == alignof(Plain),
              "lane annotations changed alignment");
static_assert(std::is_trivially_copyable_v<Annotated> ==
                  std::is_trivially_copyable_v<Plain>,
              "lane annotations changed triviality");
static_assert(std::is_standard_layout_v<Annotated> ==
                  std::is_standard_layout_v<Plain>,
              "lane annotations changed standard-layout-ness");

TEST(LaneAnnotations, AnnotatedTypeBehavesIdentically) {
  Annotated a;
  a.note();
  a.note();
  EXPECT_EQ(a.tracked, 2u);
  Plain p;
  p.note();
  p.note();
  EXPECT_EQ(p.tracked, a.tracked);
}

// ---- runtime parity --------------------------------------------------------
// The static analyzer and the engine's DPAR_ASSERT guard the same invariant
// from two sides. Annotating a class must leave the runtime side untouched:
// a DPAR_LANE_OWNED poster that violates the conservative protocol dies (or
// throws, in release) exactly like the unannotated equivalents in
// test_sim_engine.cpp / test_pdes_faults.cpp.

class DPAR_LANE_OWNED(lane_) AnnotatedPoster {
 public:
  AnnotatedPoster(sim::Engine& eng, sim::LaneId lane, sim::LaneId peer)
      : eng_(eng), lane_(lane), peer_(peer) {}

  // Deliberately violating: a cross-lane post closer than the lookahead,
  // issued from inside the owning lane's window.
  void arm_bad_post() {
    eng_.at_in(lane_, sim::usec(1), [this] {
      eng_.at_in(peer_, eng_.now() + sim::usec(1), [] {});
    });
  }

 private:
  sim::Engine& eng_;
  sim::LaneId lane_;
  sim::LaneId peer_;
};

#if DPAR_CHECK_INVARIANTS
TEST(LaneAnnotationsDeath, AnnotatedCrossLanePostTripsSameAssert) {
  EXPECT_DEATH(
      {
        sim::Engine eng;
        const sim::LaneId a = eng.add_lane();
        const sim::LaneId b = eng.add_lane();
        eng.set_lookahead(sim::usec(50));
        eng.set_pdes_workers(1);
        AnnotatedPoster poster(eng, a, b);
        poster.arm_bad_post();
        eng.run();
      },
      "cross-lane event inside the lookahead window");
}
#else
TEST(LaneAnnotationsDeath, AnnotatedCrossLanePostThrowsReleaseBackstop) {
  sim::Engine eng;
  const sim::LaneId a = eng.add_lane();
  const sim::LaneId b = eng.add_lane();
  eng.set_lookahead(sim::usec(50));
  eng.set_pdes_workers(1);
  eng.at_in(b, sim::usec(20), [] {});  // advances b's clock past the bad post
  AnnotatedPoster poster(eng, a, b);
  poster.arm_bad_post();
  EXPECT_THROW(eng.run(), std::logic_error);
}
#endif  // DPAR_CHECK_INVARIANTS

}  // namespace
}  // namespace dpar
