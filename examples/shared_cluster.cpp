// Shared-cluster scenario: opportunistic (adaptive) DualPar.
//
// A long-running sequential analysis job has the storage system to itself;
// EMC leaves it in normal computation-driven mode. Halfway through, a second
// job starts scanning its own file, the two request streams interfere at the
// disks, and EMC flips both programs into data-driven execution. The example
// prints the per-second system throughput and the EMC decision log.
//
//   $ ./shared_cluster
#include <cstdio>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

int main() {
  harness::Testbed tb;

  const std::uint64_t fsize = 1536ull << 20;
  wl::MpiIoTestConfig a;
  a.file = tb.create_file("analysis.dat", fsize);
  a.file_size = fsize;
  a.request_size = 16 * 1024;

  wl::HpioConfig b;
  b.region_size = 16 * 1024;
  b.region_spacing = 0;
  b.regions_per_call = 1;
  b.region_count = fsize / 64 / b.region_size;
  b.file = tb.create_file("scanner.dat", fsize);

  mpi::Job& job_a = tb.add_job("analysis", 64, tb.dualpar(),
                               [a](std::uint32_t) { return wl::make_mpi_io_test(a); },
                               dualpar::Policy::kAdaptive);
  mpi::Job& job_b = tb.add_job("scanner", 64, tb.dualpar(),
                               [b](std::uint32_t) { return wl::make_hpio(b); },
                               dualpar::Policy::kAdaptive, sim::secs(4));
  tb.run();

  std::printf("shared_cluster: scanner joined at t=4s\n\n");
  std::printf("  t(s)   system MB/s\n");
  for (const auto& [t, mbs] : tb.monitor().throughput_series().points)
    std::printf("  %4.0f   %10.1f%s\n", sim::to_seconds(t), mbs,
                sim::to_seconds(t) == 4 ? "   <- scanner joins" : "");

  std::printf("\nEMC decision log (1 = data-driven):\n");
  for (std::uint32_t id : {job_a.id(), job_b.id()}) {
    const auto& series = tb.emc().mode_series(id);
    std::printf("  job %u:", id);
    for (const auto& [t, mode] : series.points)
      std::printf("  t=%.1fs -> %s", sim::to_seconds(t),
                  mode > 0.5 ? "data-driven" : "normal");
    std::printf("%s\n", series.points.empty() ? "  (stayed normal)" : "");
  }
  std::printf("\njob runtimes: analysis %.1f s, scanner %.1f s; %llu data-driven "
              "cycles ran\n",
              sim::to_seconds(job_a.completion_time() - job_a.start_time()),
              sim::to_seconds(job_b.completion_time() - job_b.start_time()),
              static_cast<unsigned long long>(tb.dualpar().stats().cycles));
  return 0;
}
