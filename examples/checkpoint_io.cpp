// Checkpoint dump scenario — the data-intensive pattern the paper's
// introduction motivates (astrophysics/climate codes writing periodic
// snapshots).
//
// A 64-rank solver alternates compute steps with checkpoint writes of
// interleaved tiny cells (the BTIO pattern). The example runs the same
// application under vanilla MPI-IO and DualPar and shows where the time
// went: DualPar absorbs the cells into the global cache and writes back
// sorted, merged batches.
//
//   $ ./checkpoint_io
#include <cstdio>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

void run(const char* label, bool use_dualpar) {
  harness::Testbed tb;

  wl::BtioConfig cfg;
  cfg.total_bytes = 96ull << 20;   // total checkpoint volume
  cfg.write_steps = 12;            // one dump per simulated timestep
  cfg.read_back = false;           // restart verification off for this demo
  cfg.compute_per_step = sim::msec(80);
  cfg.file = tb.create_file("checkpoint.dat", cfg.total_bytes * 2);

  mpi::IoDriver& driver = use_dualpar ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                      : static_cast<mpi::IoDriver&>(tb.vanilla());
  mpi::Job& job = tb.add_job("solver", 64, driver,
                             [cfg](std::uint32_t) { return wl::make_btio(cfg); },
                             use_dualpar ? dualpar::Policy::kForcedDataDriven
                                         : dualpar::Policy::kForcedNormal);
  tb.run();

  const double total = sim::to_seconds(job.completion_time() - job.start_time());
  const double io = sim::to_seconds(job.total_io_time()) / job.nprocs();
  const double compute = sim::to_seconds(job.total_compute_time()) / job.nprocs();
  std::printf("%-10s  total %6.2f s   per-rank I/O %6.2f s   compute %5.2f s   "
              "throughput %7.1f MB/s\n",
              label, total, io, compute, tb.job_throughput_mbs(job));
  if (use_dualpar) {
    const auto& st = tb.dualpar().stats();
    std::printf("            DualPar: %llu data-driven cycles, %llu MB written "
                "back in sorted batches, %llu KB of holes read to merge runs\n",
                static_cast<unsigned long long>(st.cycles),
                static_cast<unsigned long long>(st.writeback_bytes >> 20),
                static_cast<unsigned long long>(st.hole_read_bytes >> 10));
  }
}

}  // namespace

int main() {
  std::printf("checkpoint_io: 64 ranks dumping 96 MB checkpoints of %u-byte "
              "cells every timestep\n\n",
              10240 / 64);
  run("vanilla", false);
  run("DualPar", true);
  std::printf("\nThe per-rank cells are %u bytes; vanilla MPI-IO pushes them to "
              "the servers one at a time, DualPar buffers a cache quota per "
              "rank and flushes file-ordered batches.\n",
              10240 / 64);
  return 0;
}
