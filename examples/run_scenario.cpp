// Command-line scenario runner: compose a cluster, a workload and an MPI-IO
// variant without writing code, and optionally export the timelines and the
// server-1 blktrace as CSV.
//
//   $ ./run_scenario --workload ior --driver dualpar --procs 64
//         --servers 9 --mb 256 --csv /tmp/run
//
//   --workload  demo|mpiiotest|hpio|ior|noncontig|s3asim|btio|dependent
//   --trace F   replay a CSV op trace instead (rank,op,file,offset,length,us)
//   --driver    vanilla|collective|dualpar|preexec
//   --policy    forced|adaptive            (DualPar mode policy)
//   --procs N   --servers N   --nodes N    (cluster shape)
//   --mb N                                 (data volume in MB)
//   --quota KB                             (per-process cache quota)
//   --sched     cfq|deadline|cscan|noop|anticipatory
//   --csv PATH  write PATH.throughput.csv / PATH.seek.csv / PATH.trace.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>
#include <map>
#include <sstream>

#include "harness/testbed.hpp"
#include "metrics/csv.hpp"
#include "wl/trace_replay.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

struct Options {
  std::string workload = "mpiiotest";
  std::string trace;
  std::string driver = "dualpar";
  std::string policy = "forced";
  std::string sched = "cfq";
  std::string csv;
  std::uint32_t procs = 64;
  std::uint32_t servers = 9;
  std::uint32_t nodes = 4;
  std::uint64_t mb = 128;
  std::uint64_t quota_kb = 1024;
};

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--workload" && (v = next())) o.workload = v;
    else if (flag == "--trace" && (v = next())) o.trace = v;
    else if (flag == "--driver" && (v = next())) o.driver = v;
    else if (flag == "--policy" && (v = next())) o.policy = v;
    else if (flag == "--sched" && (v = next())) o.sched = v;
    else if (flag == "--csv" && (v = next())) o.csv = v;
    else if (flag == "--procs" && (v = next())) o.procs = std::atoi(v);
    else if (flag == "--servers" && (v = next())) o.servers = std::atoi(v);
    else if (flag == "--nodes" && (v = next())) o.nodes = std::atoi(v);
    else if (flag == "--mb" && (v = next())) o.mb = std::atoll(v);
    else if (flag == "--quota" && (v = next())) o.quota_kb = std::atoll(v);
    else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

disk::SchedulerKind sched_of(const std::string& s) {
  if (s == "noop") return disk::SchedulerKind::kNoop;
  if (s == "deadline") return disk::SchedulerKind::kDeadline;
  if (s == "cscan") return disk::SchedulerKind::kCscan;
  if (s == "anticipatory") return disk::SchedulerKind::kAnticipatory;
  return disk::SchedulerKind::kCfq;
}

mpi::Job::ProgramFactory make_factory(harness::Testbed& tb, const Options& o,
                                      bool collective) {
  const std::uint64_t bytes = o.mb << 20;
  if (!o.trace.empty()) {
    std::ifstream in(o.trace);
    if (!in) throw std::runtime_error("cannot open trace: " + o.trace);
    std::stringstream ss;
    ss << in.rdbuf();
    auto ops = wl::parse_trace_csv(ss.str());
    // Create files large enough for the trace's extents. File ids are
    // assigned sequentially from 1, so traces must number their files
    // 1..K in ascending order.
    std::map<pfs::FileId, std::uint64_t> max_end;
    for (const auto& op : ops)
      if (op.length > 0)
        max_end[op.file] = std::max(max_end[op.file], op.offset + op.length);
    for (const auto& [file, end] : max_end) {
      const pfs::FileId assigned =
          tb.create_file("trace" + std::to_string(file), end + (1 << 20));
      if (assigned != file)
        throw std::runtime_error("trace file ids must be 1..K in ascending order "
                                 "(got id " + std::to_string(file) + ")");
    }
    return [ops](std::uint32_t rank) { return wl::make_trace_replay(ops, rank); };
  }
  if (o.workload == "demo") {
    wl::DemoConfig c;
    c.file_size = bytes;
    c.segment_size = 16 * 1024;
    c.file = tb.create_file("demo", bytes);
    return [c](std::uint32_t) { return wl::make_demo(c); };
  }
  if (o.workload == "hpio") {
    wl::HpioConfig c;
    c.region_size = 32 * 1024;
    c.region_count = bytes / o.procs / c.region_size;
    c.file = tb.create_file("hpio", bytes + (1 << 20));
    return [c](std::uint32_t) { return wl::make_hpio(c); };
  }
  if (o.workload == "ior") {
    wl::IorConfig c;
    c.file_size = bytes;
    c.request_size = 32 * 1024;
    c.collective = collective;
    c.file = tb.create_file("ior", bytes);
    return [c](std::uint32_t) { return wl::make_ior(c); };
  }
  if (o.workload == "noncontig") {
    wl::NoncontigConfig c;
    c.columns = 64;
    c.elmt_count = 128;
    c.rows = bytes / (c.columns * c.elmt_count * 4);
    c.collective = collective;
    c.file = tb.create_file("nc", bytes + (1 << 20));
    return [c](std::uint32_t) { return wl::make_noncontig(c); };
  }
  if (o.workload == "s3asim") {
    wl::S3asimConfig c;
    c.database_size = bytes;
    c.database_file = tb.create_file("db", bytes);
    c.result_file = tb.create_file(
        "res", std::uint64_t{o.procs} * c.queries * c.max_size + (1 << 20));
    return [c](std::uint32_t) { return wl::make_s3asim(c); };
  }
  if (o.workload == "btio") {
    wl::BtioConfig c;
    c.total_bytes = bytes;
    c.collective = collective;
    c.file = tb.create_file("btio", bytes * 2);
    return [c](std::uint32_t) { return wl::make_btio(c); };
  }
  if (o.workload == "dependent") {
    wl::DependentConfig c;
    c.file_size = bytes;
    c.requests = bytes / c.request_size / 4;
    c.file = tb.create_file("dep", bytes);
    return [c](std::uint32_t) { return wl::make_dependent(c); };
  }
  wl::MpiIoTestConfig c;  // default: mpiiotest
  c.file_size = bytes;
  c.request_size = 16 * 1024;
  c.collective = collective;
  c.file = tb.create_file("mit", bytes);
  return [c](std::uint32_t) { return wl::make_mpi_io_test(c); };
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return 2;

  harness::TestbedConfig cfg;
  cfg.data_servers = o.servers;
  cfg.compute_nodes = o.nodes;
  cfg.scheduler = sched_of(o.sched);
  cfg.dualpar.cache_quota = o.quota_kb * 1024;
  harness::Testbed tb(cfg);

  const bool collective = (o.driver == "collective");
  mpi::IoDriver& drv = o.driver == "vanilla"    ? static_cast<mpi::IoDriver&>(tb.vanilla())
                       : o.driver == "collective" ? static_cast<mpi::IoDriver&>(tb.collective())
                       : o.driver == "preexec"    ? static_cast<mpi::IoDriver&>(tb.preexec())
                                                  : static_cast<mpi::IoDriver&>(tb.dualpar());
  const dualpar::Policy policy =
      o.policy == "adaptive" ? dualpar::Policy::kAdaptive
      : o.driver == "dualpar" ? dualpar::Policy::kForcedDataDriven
                              : dualpar::Policy::kForcedNormal;

  const std::string label = o.trace.empty() ? o.workload : "trace:" + o.trace;
  mpi::Job& job =
      tb.add_job(label, o.procs, drv, make_factory(tb, o, collective), policy);
  const std::uint64_t events = tb.run();

  std::printf("%s / %s / %u procs / %u servers / %llu MB\n", label.c_str(),
              o.driver.c_str(), o.procs, o.servers,
              static_cast<unsigned long long>(o.mb));
  std::printf("  runtime     %8.2f simulated s  (%llu events)\n",
              sim::to_seconds(job.completion_time() - job.start_time()),
              static_cast<unsigned long long>(events));
  std::printf("  throughput  %8.1f MB/s\n", tb.job_throughput_mbs(job));
  std::printf("  I/O ratio   %8.1f %%\n",
              100.0 * static_cast<double>(job.total_io_time()) /
                  static_cast<double>(job.total_io_time() + job.total_compute_time() + 1));
  if (o.driver == "dualpar") {
    const auto& st = tb.dualpar().stats();
    std::printf("  dualpar     %llu cycles, %llu ghost forks, hit %llu MB, "
                "prefetched %llu MB, wrote back %llu MB\n",
                static_cast<unsigned long long>(st.cycles),
                static_cast<unsigned long long>(st.ghost_forks),
                static_cast<unsigned long long>(st.cache_hit_bytes >> 20),
                static_cast<unsigned long long>(st.prefetch_bytes >> 20),
                static_cast<unsigned long long>(st.writeback_bytes >> 20));
  }
  if (!o.csv.empty()) {
    metrics::write_series_csv(o.csv + ".throughput.csv",
                              tb.monitor().throughput_series(), "mbps");
    metrics::write_series_csv(o.csv + ".seek.csv", tb.monitor().seek_series(),
                              "sectors");
    metrics::write_trace_csv(o.csv + ".trace.csv", tb.server(0).trace().events());
    std::printf("  csv         %s.{throughput,seek,trace}.csv\n", o.csv.c_str());
  }
  return 0;
}
