// Writing your own workload: implement mpi::Program.
//
// A program is a cloneable op stream — compute bursts, I/O calls, barriers.
// Cloneability is what lets DualPar fork ghost pre-executions, so keep all
// state in copyable members. This example builds a two-phase "stencil"
// application: each rank reads a halo-exchange-style block region, computes,
// and appends a per-rank result strip; then everyone barriers and repeats.
//
//   $ ./custom_workload
#include <cstdio>
#include <memory>

#include "harness/testbed.hpp"
#include "mpi/program.hpp"

using namespace dpar;

namespace {

class StencilProgram final : public mpi::Program {
 public:
  StencilProgram(pfs::FileId grid, pfs::FileId out, std::uint64_t block_bytes,
                 std::uint32_t iterations)
      : grid_(grid), out_(out), block_(block_bytes), iterations_(iterations) {}

  mpi::Op next(mpi::ProgramContext& ctx) override {
    if (iter_ >= iterations_) return mpi::OpEnd{};
    switch (step_++) {
      case 0: {  // read own block plus one-row halos from the neighbours
        mpi::IoCall call;
        call.file = grid_;
        const std::uint64_t base = (iter_ * ctx.nprocs + ctx.rank) * block_;
        call.segments.push_back(pfs::Segment{base, block_});
        if (ctx.rank > 0)
          call.segments.push_back(pfs::Segment{base - 4096, 4096});
        if (ctx.rank + 1 < ctx.nprocs)
          call.segments.push_back(pfs::Segment{base + block_, 4096});
        return mpi::OpIo{std::move(call)};
      }
      case 1:  // the stencil sweep itself
        return mpi::OpCompute{sim::msec(3)};
      case 2: {  // append this iteration's result strip
        mpi::IoCall call;
        call.file = out_;
        call.is_write = true;
        call.segments.push_back(pfs::Segment{
            (iter_ * ctx.nprocs + ctx.rank) * (block_ / 4), block_ / 4});
        return mpi::OpIo{std::move(call)};
      }
      default:  // synchronize and advance to the next iteration
        step_ = 0;
        ++iter_;
        return mpi::OpBarrier{};
    }
  }

  std::unique_ptr<mpi::Program> clone() const override {
    return std::make_unique<StencilProgram>(*this);  // plain value copy
  }

 private:
  pfs::FileId grid_, out_;
  std::uint64_t block_;
  std::uint32_t iterations_;
  std::uint32_t iter_ = 0;
  int step_ = 0;
};

double run(harness::Testbed& tb, mpi::IoDriver& driver, dualpar::Policy policy) {
  const std::uint32_t procs = 32, iters = 24;
  const std::uint64_t block = 256 * 1024;
  const pfs::FileId grid =
      tb.create_file("grid.dat", std::uint64_t{procs} * iters * block + (1 << 20));
  const pfs::FileId out =
      tb.create_file("result.dat", std::uint64_t{procs} * iters * block / 4 + (1 << 20));
  mpi::Job& job = tb.add_job("stencil", procs, driver,
                             [&](std::uint32_t) {
                               return std::make_unique<StencilProgram>(grid, out, block,
                                                                       iters);
                             },
                             policy);
  tb.run();
  return tb.job_throughput_mbs(job);
}

}  // namespace

int main() {
  std::printf("custom_workload: a user-defined stencil Program under three "
              "MPI-IO variants\n\n");
  {
    harness::Testbed tb;
    std::printf("  vanilla MPI-IO : %7.1f MB/s\n",
                run(tb, tb.vanilla(), dualpar::Policy::kForcedNormal));
  }
  {
    harness::Testbed tb;
    std::printf("  pre-exec (S2)  : %7.1f MB/s\n",
                run(tb, tb.preexec(), dualpar::Policy::kForcedNormal));
  }
  {
    harness::Testbed tb;
    std::printf("  DualPar        : %7.1f MB/s\n",
                run(tb, tb.dualpar(), dualpar::Policy::kForcedDataDriven));
  }
  std::printf("\nImplementing Program is all it takes: DualPar's ghost "
              "pre-execution works on any cloneable op stream, no source "
              "changes to the 'application' logic.\n");
  return 0;
}
