// Characterize every built-in benchmark's access pattern without running a
// simulation — the tool version of the paper's §V-A benchmark descriptions
// ("These benchmarks cover a large spectrum of access behaviors: from
// sequential access among processes to non-sequential access, from read
// access to write access, from well-aligned requests to requests of
// different sizes").
//
//   $ ./analyze_workloads
#include <cstdio>

#include "wl/analyze.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

int main() {
  const std::uint32_t nprocs = 64;
  const std::uint32_t rank = 3;

  std::printf("Access patterns as seen by rank %u of %u\n", rank, nprocs);

  {
    wl::DemoConfig c;
    c.file_size = 256 << 20;
    c.segment_size = 4096;
    auto prog = wl::make_demo(c);
    std::printf("\ndemo (4 KB segments):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::MpiIoTestConfig c;
    c.file_size = 256 << 20;
    auto prog = wl::make_mpi_io_test(c);
    std::printf("\nmpi-io-test (16 KB, barrier per call):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::HpioConfig c;
    auto prog = wl::make_hpio(c);
    std::printf("\nhpio (32 KB regions, 1 KB spacing):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::IorConfig c;
    c.file_size = 1ull << 30;
    auto prog = wl::make_ior(c);
    std::printf("\nior-mpi-io (32 KB within a private scope):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::NoncontigConfig c;
    c.rows = 4096;
    auto prog = wl::make_noncontig(c);
    std::printf("\nnoncontig (512 B column elements):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::S3asimConfig c;
    c.queries = 8;
    auto prog = wl::make_s3asim(c);
    std::printf("\nS3asim (variable 100 B..100 KB):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::BtioConfig c;
    c.total_bytes = 64 << 20;
    auto prog = wl::make_btio(c);
    std::printf("\nBTIO (%u B cells at 64 procs):\n%s", 10240 / nprocs,
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  {
    wl::DependentConfig c;
    c.requests = 500;
    auto prog = wl::make_dependent(c);
    std::printf("\ndependent reads (Table III adversary):\n%s",
                wl::describe(wl::analyze(*prog, rank, nprocs)).c_str());
  }
  return 0;
}
