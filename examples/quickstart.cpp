// Quickstart: build a simulated cluster, run one I/O-intensive MPI program
// under three MPI-IO variants (vanilla, collective I/O, DualPar), and print
// what the storage system delivered.
//
//   $ ./quickstart
//
// The program is mpi-io-test (PVFS2's benchmark): 64 processes reading a
// 256 MB file in 16 KB requests, globally sequential, a barrier after every
// call — exactly the §II/§V-B single-application setup, scaled down.
#include <cstdio>
#include <string>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

double run_once(const std::string& variant) {
  harness::Testbed tb;  // default: 9 data servers, 4 compute nodes, CFQ disks

  const std::uint64_t file_size = 256ull << 20;
  wl::MpiIoTestConfig wcfg;
  wcfg.file = tb.create_file("mpi-io-test.dat", file_size);
  wcfg.file_size = file_size;
  wcfg.request_size = 16 * 1024;
  wcfg.collective = (variant == "collective");

  mpi::IoDriver& driver = variant == "vanilla"
                              ? static_cast<mpi::IoDriver&>(tb.vanilla())
                          : variant == "collective"
                              ? static_cast<mpi::IoDriver&>(tb.collective())
                              : static_cast<mpi::IoDriver&>(tb.dualpar());
  const auto policy = variant == "dualpar" ? dualpar::Policy::kForcedDataDriven
                                           : dualpar::Policy::kForcedNormal;

  mpi::Job& job = tb.add_job("mpi-io-test", /*nprocs=*/64, driver,
                             [&](std::uint32_t) { return wl::make_mpi_io_test(wcfg); },
                             policy);
  tb.run();

  std::printf("  %-12s  %8.1f MB/s   (runtime %6.2f s, %llu events)\n",
              variant.c_str(), tb.job_throughput_mbs(job),
              sim::to_seconds(job.completion_time() - job.start_time()),
              static_cast<unsigned long long>(tb.engine().events_fired()));
  return tb.job_throughput_mbs(job);
}

}  // namespace

int main() {
  std::printf("quickstart: mpi-io-test read, 64 procs, 256 MB, 16 KB requests\n");
  const double vanilla = run_once("vanilla");
  const double coll = run_once("collective");
  const double dualpar = run_once("dualpar");
  std::printf("\nDualPar vs vanilla: %.2fx, vs collective I/O: %.2fx\n",
              dualpar / vanilla, dualpar / coll);
  return 0;
}
